package core

import (
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// chargeEnv records every Charge by kind, for auditing the charging
// discipline documented in internal/env.
type chargeEnv struct {
	id     int
	counts [env.NumCostKinds]int64
}

func (c *chargeEnv) Charge(k env.CostKind, n int64) { c.counts[k] += n }
func (c *chargeEnv) Touch(uint64, int, bool)        {}
func (c *chargeEnv) ThreadID() int                  { return c.id }
func (c *chargeEnv) reset()                         { c.counts = [env.NumCostKinds]int64{} }

// TestChargingDiscipline asserts the surcharge semantics: every small malloc
// charges OpMallocFast exactly once; a slow-path malloc charges OpMallocSlow
// once IN ADDITION (never instead); the batch ops are one-per-call
// surcharges over the per-block charges.
func TestChargingDiscipline(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	ce := &chargeEnv{id: 0}
	th := h.NewThread(ce)

	// First malloc of a class misses everywhere: OS slow path. The fast
	// charge must still appear — the slow charge is a surcharge.
	p := h.Malloc(th, 100)
	if got := ce.counts[env.OpMallocFast]; got != 1 {
		t.Fatalf("slow-path malloc charged OpMallocFast %d times, want 1", got)
	}
	if got := ce.counts[env.OpMallocSlow]; got != 1 {
		t.Fatalf("slow-path malloc charged OpMallocSlow %d times, want 1", got)
	}

	// Second malloc of the class hits the heap: fast charge only.
	ce.reset()
	q := h.Malloc(th, 100)
	if got := ce.counts[env.OpMallocFast]; got != 1 {
		t.Fatalf("fast-path malloc charged OpMallocFast %d times, want 1", got)
	}
	if got := ce.counts[env.OpMallocSlow]; got != 0 {
		t.Fatalf("fast-path malloc charged OpMallocSlow %d times, want 0", got)
	}

	// A free charges OpFree exactly once.
	ce.reset()
	h.Free(th, p)
	h.Free(th, q)
	if got := ce.counts[env.OpFree]; got != 2 {
		t.Fatalf("2 frees charged OpFree %d times, want 2", got)
	}

	// A batch keeps the per-block charges and adds one batch op per call.
	ce.reset()
	out := make([]alloc.Ptr, 8)
	n := h.MallocBatch(th, 100, 8, out)
	if n != 8 {
		t.Fatalf("MallocBatch = %d, want 8", n)
	}
	if got := ce.counts[env.OpMallocBatch]; got != 1 {
		t.Fatalf("MallocBatch charged OpMallocBatch %d times, want 1", got)
	}
	if got := ce.counts[env.OpMallocFast]; got != 8 {
		t.Fatalf("MallocBatch(8) charged OpMallocFast %d times, want 8", got)
	}
	ce.reset()
	h.FreeBatch(th, out)
	if got := ce.counts[env.OpFreeBatch]; got != 1 {
		t.Fatalf("FreeBatch charged OpFreeBatch %d times, want 1", got)
	}
	if got := ce.counts[env.OpFree]; got != 8 {
		t.Fatalf("FreeBatch(8) charged OpFree %d times, want 8", got)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocBatchPartialAndSpanning(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	th := thread(h, 0)

	// n capped by len(out).
	small := make([]alloc.Ptr, 3)
	if n := h.MallocBatch(th, 64, 10, small); n != 3 {
		t.Fatalf("MallocBatch capped = %d, want 3", n)
	}
	h.FreeBatch(th, small)

	// A batch far larger than one superblock's capacity: the single
	// critical section must pull multiple superblocks from the OS.
	const want = 200
	out := make([]alloc.Ptr, want)
	if n := h.MallocBatch(th, 1000, want, out); n != want {
		t.Fatalf("MallocBatch = %d, want %d", n, want)
	}
	seen := make(map[alloc.Ptr]bool, want)
	for _, p := range out {
		if p.IsNil() || seen[p] {
			t.Fatalf("nil or duplicate pointer %#x in batch", uint64(p))
		}
		seen[p] = true
		if us := h.UsableSize(p); us < 1000 {
			t.Fatalf("UsableSize = %d, want >= 1000", us)
		}
	}
	st := h.Stats()
	// BatchedBlocks counts both directions: 3 refilled + 3 flushed + 200.
	if st.BatchRefills != 2 || st.BatchedBlocks != want+6 {
		t.Fatalf("BatchRefills=%d BatchedBlocks=%d, want 2 and %d", st.BatchRefills, st.BatchedBlocks, want+6)
	}
	if st.OSReserves < 2 {
		t.Fatalf("OSReserves = %d, want several superblocks", st.OSReserves)
	}

	// The batch free of all of them must leave the emptiness invariant
	// restored even though it demands many evictions (the per-block path
	// would have evicted one per free).
	h.FreeBatch(th, out)
	hp := h.heaps[th.State.(*threadState).heapIdx]
	if hp.InvariantViolated() {
		t.Fatalf("emptiness invariant violated after batch free: u=%d a=%d", hp.U(), hp.A())
	}
	st = h.Stats()
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", st.LiveBytes)
	}
	if st.BatchFlushes != 2 || st.BatchedBlocks != 2*(want+3) {
		t.Fatalf("BatchFlushes=%d BatchedBlocks=%d, want 2 and %d", st.BatchFlushes, st.BatchedBlocks, 2*(want+3))
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestFreeBatchOwnerGroups frees one batch holding blocks of two different
// heaps, a large object, and nils: the own-heap group frees under our lock,
// the foreign group takes the lock-free remote push, the large object is
// released inline.
func TestFreeBatchOwnerGroups(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	t0 := thread(h, 0) // heap 1
	t1 := thread(h, 1) // heap 2

	var batch []alloc.Ptr
	for i := 0; i < 10; i++ {
		batch = append(batch, h.Malloc(t0, 64))
	}
	foreign := 0
	for i := 0; i < 7; i++ {
		batch = append(batch, h.Malloc(t1, 64))
		foreign++
	}
	batch = append(batch, h.Malloc(t0, h.classes.MaxSize()+1)) // large
	batch = append(batch, 0)                                   // nil: skipped

	h.FreeBatch(t0, batch)
	st := h.Stats()
	if st.Frees != int64(len(batch)-1) {
		t.Fatalf("Frees = %d, want %d", st.Frees, len(batch)-1)
	}
	if st.RemoteFastFrees != int64(foreign) {
		t.Fatalf("RemoteFastFrees = %d, want %d (the foreign owner group)", st.RemoteFastFrees, foreign)
	}
	h.Reconcile(&env.RealEnv{})
	if live := h.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d", live)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestFreeBatchRemoteConcurrent pushes remote batches while the owning
// thread allocates and frees (triggering drains in flight) — run under
// -race, this exercises the single-CAS chain publish against concurrent
// Swap-drains.
func TestFreeBatchRemoteConcurrent(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	t0 := thread(h, 0)
	t1 := thread(h, 1)

	const rounds = 60
	const batchSize = 24
	ch := make(chan []alloc.Ptr, 4)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // owner: allocates batches, hands them off, churns (drains)
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			out := make([]alloc.Ptr, batchSize)
			h.MallocBatch(t0, 128, batchSize, out)
			ch <- out
			// Churn forces AllocBlock misses and drain attempts while
			// the consumer's pushes are in flight.
			var local []alloc.Ptr
			for i := 0; i < 40; i++ {
				local = append(local, h.Malloc(t0, 128))
			}
			h.FreeBatch(t0, local)
		}
		close(ch)
	}()
	go func() { // consumer: batch-frees foreign blocks
		defer wg.Done()
		for ps := range ch {
			h.FreeBatch(t1, ps)
		}
	}()
	wg.Wait()

	h.Reconcile(&env.RealEnv{})
	if live := h.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d after reconcile", live)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.RemoteFastFrees == 0 {
		t.Fatal("no remote fast frees — the foreign batches never took the lock-free path")
	}
}
