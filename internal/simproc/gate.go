package simproc

import "hoardgo/internal/env"

// Gate is a one-shot event: threads Wait until some thread Sets it. Waiters
// resume at the later of their own time and the setter's (plus the barrier
// handoff cost). Used for cross-thread happens-before edges, e.g. "object X
// is now allocated" during parallel trace replay.
type Gate struct {
	w       *World
	set     bool
	setTime int64
	waiters []*thread
}

// NewGate creates an unset gate.
func (w *World) NewGate() *Gate { return &Gate{w: w} }

// IsSet reports whether the gate has been set.
func (g *Gate) IsSet() bool { return g.set }

// Set opens the gate, waking all current waiters; later Waits return
// immediately. Setting twice panics (one-shot).
func (g *Gate) Set(e env.Env) {
	t := e.(*Env).t
	if g.set {
		panic("simproc: Gate set twice")
	}
	g.set = true
	g.setTime = t.time
	for _, o := range g.waiters {
		wake := g.setTime + g.w.cost.BarrierCost
		if o.time < wake {
			o.time = wake
		}
		o.state = stateReady
		t.observe(o)
	}
	g.waiters = nil
}

// Wait blocks the calling simulated thread until the gate is set.
func (g *Gate) Wait(e env.Env) {
	t := e.(*Env).t
	if g.set {
		return
	}
	g.waiters = append(g.waiters, t)
	t.state = stateBlockedBarrier
	t.park()
}
