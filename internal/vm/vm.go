// Package vm provides the operating-system memory interface the allocators
// run on, behind the Backend abstraction.
//
// The default implementation is a simulated OS: Go's runtime owns real
// allocation, so this reproduction of Hoard manages an explicit, simulated
// 48-bit address space instead of interposing on malloc. Allocators reserve
// page-aligned spans (the moral equivalent of mmap/sbrk), hand out addresses
// inside them, and look spans back up from raw addresses on free — exactly
// the page-map technique production allocators use. Every span is backed by
// a real Go byte slab, so the memory handed out is genuinely readable and
// writable and blocks that share a simulated cache line also share physical
// memory.
//
// The second implementation (arena.go, Linux only) swaps the simulated
// space for one large mmap'd virtual reservation: span addresses become real
// virtual addresses, resolution becomes address arithmetic, and decommit
// becomes a real madvise(MADV_DONTNEED). See Backend.
//
// Every backend distinguishes reserved bytes (address space handed to the
// allocator) from committed bytes (pages currently backed), each with its
// own high-water mark. Reserve commits the whole span; Span.Decommit drops
// the backing of a page range madvise(DONTNEED)-style while keeping the
// addresses reserved, and Recommit backs them again. Peak committed is what
// the paper's fragmentation and blowup experiments measure; the
// reserved/committed gap is what the scavenger returns to the OS.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// PageShift is log2 of the page size of the simulated OS.
	PageShift = 12
	// PageSize is the page size of the simulated OS (4 KiB, as on the
	// paper's UltraSPARC/Solaris platform).
	PageSize = 1 << PageShift

	// l1Bits and l2Bits size the two-level page table. Together with
	// PageShift they cover a 2^(11+14+12) = 128 GiB address space, far
	// beyond any experiment here.
	l1Bits = 11
	l2Bits = 14

	l1Size = 1 << l1Bits
	l2Size = 1 << l2Bits

	// baseAddr is the first address ever handed out. Zero is reserved so
	// that 0 can serve as the allocator's nil.
	baseAddr = 1 << 20

	maxAddr = 1 << (l1Bits + l2Bits + PageShift)
)

// Poison patterns written over span memory in debug (poison) mode, chosen to
// be distinct so a crash dump says which lifecycle edge produced the bytes.
// Only the simulated backend poisons; the arena relies on the OS's
// zero-fill guarantee instead.
const (
	// PoisonReleased marks memory of a released span awaiting reuse.
	PoisonReleased = 0xDB
	// PoisonDecommitted marks pages dropped by Decommit.
	PoisonDecommitted = 0xDD
	// PoisonRecommitted marks pages freshly backed by Recommit (a real OS
	// would hand back zero pages; the poison flushes out code that assumes
	// data survived a decommit/recommit cycle).
	PoisonRecommitted = 0xDC
)

// Span is a contiguous page-aligned region of a backend's address space,
// backed by real memory.
type Span struct {
	// Base is the first address of the span (simulated for the sim
	// backend, a real virtual address for the arena).
	Base uint64
	// Len is the usable length in bytes (a multiple of the page size).
	Len int
	// Owner is an arbitrary tag attached by the reserving allocator,
	// typically its superblock or large-object header. It is set before
	// the span becomes visible to Lookup and must not be mutated while
	// the span is live.
	Owner any

	data []byte
	host spanHost

	// decomPages is a bitmap of decommitted pages (bit i set = page i has
	// no backing), allocated lazily on first Decommit and guarded by the
	// host's mutex. decomBytes caches the decommitted byte total so the
	// hot Bytes path can skip the bitmap with one atomic load.
	decomPages []uint64
	decomBytes atomic.Int64
}

// Bytes returns a view of n bytes of the span's backing memory starting at
// byte offset off. It panics if the range is out of bounds or overlaps a
// decommitted page — touching decommitted memory is always an allocator bug.
func (sp *Span) Bytes(off, n int) []byte {
	if sp.decomBytes.Load() != 0 {
		sp.checkCommitted(off, n)
	}
	return sp.data[off : off+n : off+n]
}

// checkCommitted panics if [off, off+n) overlaps a decommitted page. It
// takes the host's mutex: this path is only reached on spans that currently
// have decommitted pages, which legitimate code never touches.
func (sp *Span) checkCommitted(off, n int) {
	mu := sp.host.spanMu()
	mu.Lock()
	defer mu.Unlock()
	if sp.decomPages == nil {
		return
	}
	for pg := off >> PageShift; pg <= (off+n-1)>>PageShift; pg++ {
		if sp.decomPages[pg/64]&(1<<(pg%64)) != 0 {
			panic(fmt.Sprintf("vm: access to decommitted page %d of span %#x (Bytes(%d, %d))", pg, sp.Base, off, n))
		}
	}
}

// Data returns the span's entire backing memory. It panics if any page of
// the span is decommitted.
func (sp *Span) Data() []byte {
	if sp.decomBytes.Load() != 0 {
		sp.checkCommitted(0, sp.Len)
	}
	return sp.data
}

// End returns the address one past the last byte of the span.
func (sp *Span) End() uint64 { return sp.Base + uint64(sp.Len) }

// DecommittedBytes returns the number of the span's bytes currently
// decommitted.
func (sp *Span) DecommittedBytes() int64 { return sp.decomBytes.Load() }

// Decommit drops the backing of the page-aligned range [off, off+n), in the
// style of madvise(MADV_DONTNEED): the addresses stay reserved and Lookup
// still resolves them, but the pages stop counting as committed and any
// access through Bytes panics until Recommit. On the simulated backend the
// dropped memory is zeroed (poisoned in poison mode); on the arena it is a
// real madvise and the OS reclaims the pages. Either way the previous
// contents — e.g. a superblock's free-list links — are genuinely gone.
// Already-decommitted pages are skipped. It panics if the range is not
// page-aligned or escapes the span.
func (sp *Span) Decommit(off, n int) {
	sp.pageRange("Decommit", off, n)
	h := sp.host
	mu := h.spanMu()
	mu.Lock()
	if sp.decomPages == nil {
		sp.decomPages = make([]uint64, (sp.Len>>PageShift+63)/64)
	}
	dropped := 0
	runOff, runLen := 0, 0
	for pg := off >> PageShift; pg < (off+n)>>PageShift; pg++ {
		w, b := pg/64, uint64(1)<<(pg%64)
		if sp.decomPages[w]&b != 0 {
			if runLen > 0 {
				h.dropPages(sp, runOff, runLen)
				runLen = 0
			}
			continue
		}
		sp.decomPages[w] |= b
		if runLen == 0 {
			runOff = pg << PageShift
		}
		runLen += PageSize
		dropped += PageSize
	}
	if runLen > 0 {
		h.dropPages(sp, runOff, runLen)
	}
	c := h.counts()
	if dropped > 0 {
		sp.decomBytes.Add(int64(dropped))
		c.committed.Add(int64(-dropped))
		c.decommitted.Add(int64(dropped))
	}
	c.decommits.Add(1)
	mu.Unlock()
}

// Recommit restores backing for the page-aligned range [off, off+n),
// re-counting the pages as committed. A real OS hands back zero pages — the
// arena backend does exactly that on the next touch; the simulated backend
// zero-fills, or fills with PoisonRecommitted in poison mode to flush out
// code that assumes data survived the decommit. Pages that are already
// committed are skipped. It panics if the range is not page-aligned or
// escapes the span.
func (sp *Span) Recommit(off, n int) {
	sp.pageRange("Recommit", off, n)
	h := sp.host
	mu := h.spanMu()
	mu.Lock()
	restored := 0
	if sp.decomPages != nil {
		runOff, runLen := 0, 0
		for pg := off >> PageShift; pg < (off+n)>>PageShift; pg++ {
			w, b := pg/64, uint64(1)<<(pg%64)
			if sp.decomPages[w]&b == 0 {
				if runLen > 0 {
					h.backPages(sp, runOff, runLen)
					runLen = 0
				}
				continue
			}
			sp.decomPages[w] &^= b
			if runLen == 0 {
				runOff = pg << PageShift
			}
			runLen += PageSize
			restored += PageSize
		}
		if runLen > 0 {
			h.backPages(sp, runOff, runLen)
		}
	}
	c := h.counts()
	if restored > 0 {
		sp.decomBytes.Add(int64(-restored))
		c.decommitted.Add(int64(-restored))
		c.addCommitted(int64(restored))
	}
	c.recommits.Add(1)
	mu.Unlock()
}

func (sp *Span) pageRange(op string, off, n int) {
	if off < 0 || n <= 0 || off+n > sp.Len {
		panic(fmt.Sprintf("vm: %s(%d, %d) escapes span of %d bytes", op, off, n, sp.Len))
	}
	if off&(PageSize-1) != 0 || n&(PageSize-1) != 0 {
		panic(fmt.Sprintf("vm: %s(%d, %d) not page-aligned", op, off, n))
	}
}

// Stats is a snapshot of a backend's accounting.
type Stats struct {
	// Reserved is the number of address-space bytes currently handed out
	// (live spans, committed or not); PeakReserved is its high-water mark.
	Reserved, PeakReserved int64
	// Committed is the number of bytes currently backed by memory.
	Committed int64
	// PeakCommitted is the high-water mark of Committed. This is the "max
	// heap" measurement used by the paper's fragmentation table.
	PeakCommitted int64
	// DecommittedBytes is the reserved-but-unbacked byte total, i.e.
	// Reserved - Committed contributed by Decommit.
	DecommittedBytes int64
	// Reserves and Releases count Reserve and Release calls.
	Reserves, Releases int64
	// Recycled counts Reserve calls satisfied from the recycle pool
	// rather than fresh backing memory.
	Recycled int64
	// Decommits and Recommits count Span.Decommit and Span.Recommit calls.
	Decommits, Recommits int64
	// Grows counts extension mappings added after the initial reservation
	// was exhausted. Always zero on the simulated backend, whose address
	// space is unbounded.
	Grows int64
}

// Space is the simulated OS address space, the default Backend. All methods
// are safe for concurrent use; Lookup and Bytes are lock-free (Bytes takes
// the lock only for spans that currently have decommitted pages).
type Space struct {
	counters

	mu      sync.Mutex
	next    uint64
	pool    map[int][]*Span // released spans by length, for reuse
	poisons bool

	l1 [l1Size]atomic.Pointer[l2node]
}

type l2node [l2Size]atomic.Pointer[Span]

// New returns an empty simulated Space.
func New() *Space {
	return &Space{next: baseAddr, pool: make(map[int][]*Span)}
}

// Name identifies the simulated backend.
func (s *Space) Name() string { return "sim" }

// Close is a no-op: the simulated space is ordinary Go memory.
func (s *Space) Close() error { return nil }

// SetPoison controls whether span memory is overwritten with poison patterns
// on release, decommit, and recommit, to flush out use-after-free and
// use-after-decommit bugs in tests. It is off by default.
func (s *Space) SetPoison(on bool) {
	s.mu.Lock()
	s.poisons = on
	s.mu.Unlock()
}

// Reserve returns a new span of size bytes (rounded up to whole pages) whose
// base address is a multiple of align. align must be zero or a power of two;
// zero means page alignment. The span is fully committed. The owner tag is
// attached before the span is published. Reserve panics if size is not
// positive or align is invalid.
func (s *Space) Reserve(size, align int, owner any) *Span {
	size, align = checkReserve(size, align)

	s.mu.Lock()
	sp := s.takeFromPoolLocked(size, align)
	if sp == nil {
		base := (s.next + uint64(align) - 1) &^ (uint64(align) - 1)
		if base+uint64(size) > maxAddr {
			s.mu.Unlock()
			panic("vm: simulated address space exhausted")
		}
		s.next = base + uint64(size)
		sp = &Span{Base: base, Len: size, data: make([]byte, size), host: s}
	}
	sp.Owner = owner
	s.publishLocked(sp)
	s.mu.Unlock()

	s.reserves.Add(1)
	s.addReserved(int64(size))
	s.addCommitted(int64(size))
	return sp
}

// checkReserve validates and normalizes a Reserve request, shared by every
// backend: size is rounded up to whole pages and align defaults to page
// alignment.
func checkReserve(size, align int) (int, int) {
	if size <= 0 {
		panic(fmt.Sprintf("vm: Reserve size %d", size))
	}
	if align == 0 {
		align = PageSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("vm: Reserve align %d not a power of two", align))
	}
	if align < PageSize {
		align = PageSize
	}
	return (size + PageSize - 1) &^ (PageSize - 1), align
}

// takeFromPoolLocked pops a recycled span of exactly the given size whose
// base satisfies align, if one exists.
func (s *Space) takeFromPoolLocked(size, align int) *Span {
	list := s.pool[size]
	for i, sp := range list {
		if sp.Base&(uint64(align)-1) == 0 {
			list[i] = list[len(list)-1]
			s.pool[size] = list[:len(list)-1]
			s.recycled.Add(1)
			return sp
		}
	}
	return nil
}

// Release returns a span to the simulated OS. The span's addresses become
// invalid: Lookup returns nil for them until the region is reserved again.
// Releasing a partially decommitted span only un-commits the bytes that were
// still backed; the decommitted remainder already left the committed count
// when Decommit dropped it.
func (s *Space) Release(sp *Span) {
	if sp == nil {
		panic("vm: Release(nil)")
	}
	s.mu.Lock()
	s.unpublishLocked(sp)
	sp.Owner = nil
	backed := int64(sp.Len) - resetDecommitState(sp, &s.counters)
	if s.poisons {
		for i := range sp.data {
			sp.data[i] = PoisonReleased
		}
	}
	s.pool[sp.Len] = append(s.pool[sp.Len], sp)
	s.mu.Unlock()

	s.releases.Add(1)
	s.reserved.Add(int64(-sp.Len))
	s.committed.Add(-backed)
}

// resetDecommitState clears a span's decommit bitmap and accounting so the
// pooled span comes back fully committed from its next Reserve, returning
// the byte total that was decommitted. Called with the host's mutex held.
func resetDecommitState(sp *Span, c *counters) int64 {
	decom := sp.decomBytes.Load()
	if decom != 0 {
		c.decommitted.Add(-decom)
		sp.decomBytes.Store(0)
		for i := range sp.decomPages {
			sp.decomPages[i] = 0
		}
	}
	return decom
}

func (s *Space) publishLocked(sp *Span) {
	for a := sp.Base; a < sp.End(); a += PageSize {
		s.node(a).pageSlot(a).Store(sp)
	}
}

func (s *Space) unpublishLocked(sp *Span) {
	for a := sp.Base; a < sp.End(); a += PageSize {
		s.node(a).pageSlot(a).Store(nil)
	}
}

// node returns the level-2 table covering addr, creating it if needed.
// Creation races are benign double-stores under s.mu; reads are lock-free.
func (s *Space) node(addr uint64) *l2node {
	i := addr >> (PageShift + l2Bits)
	n := s.l1[i].Load()
	if n == nil {
		n = new(l2node)
		if !s.l1[i].CompareAndSwap(nil, n) {
			n = s.l1[i].Load()
		}
	}
	return n
}

func (n *l2node) pageSlot(addr uint64) *atomic.Pointer[Span] {
	return &n[(addr>>PageShift)&(l2Size-1)]
}

// Lookup returns the span containing addr, or nil if addr is not part of any
// live span. It is lock-free and safe for concurrent use. Decommitted pages
// still resolve — their addresses are reserved; only their backing is gone.
func (s *Space) Lookup(addr uint64) *Span {
	if addr >= maxAddr {
		return nil
	}
	n := s.l1[addr>>(PageShift+l2Bits)].Load()
	if n == nil {
		return nil
	}
	sp := n.pageSlot(addr).Load()
	if sp == nil || addr < sp.Base || addr >= sp.End() {
		return nil
	}
	return sp
}

// Bytes returns a view of n bytes of backing memory at the simulated address
// addr. It panics if the range is not fully inside one live span or touches
// a decommitted page, which always indicates an allocator bug or a
// use-after-free.
func (s *Space) Bytes(addr uint64, n int) []byte {
	return backendBytes(s, addr, n)
}

// backendBytes implements Backend.Bytes over any Lookup.
func backendBytes(b Backend, addr uint64, n int) []byte {
	sp := b.Lookup(addr)
	if sp == nil {
		panic(fmt.Sprintf("vm: Bytes(%#x, %d): no span at address", addr, n))
	}
	off := int(addr - sp.Base)
	if off+n > sp.Len {
		panic(fmt.Sprintf("vm: Bytes(%#x, %d): range escapes span [%#x,%#x)", addr, n, sp.Base, sp.End()))
	}
	return sp.Bytes(off, n)
}

// spanHost hooks: the simulated space "drops" pages by erasing their
// contents (zero, or poison in poison mode) and "backs" them the same way,
// so data genuinely does not survive a decommit/recommit cycle.

func (s *Space) spanMu() *sync.Mutex { return &s.mu }
func (s *Space) counts() *counters   { return &s.counters }

func (s *Space) dropPages(sp *Span, off, n int) {
	fill := byte(0)
	if s.poisons {
		fill = PoisonDecommitted
	}
	fillBytes(sp.data[off:off+n], fill)
}

func (s *Space) backPages(sp *Span, off, n int) {
	fill := byte(0)
	if s.poisons {
		fill = PoisonRecommitted
	}
	fillBytes(sp.data[off:off+n], fill)
}

func fillBytes(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
