package core

import (
	"fmt"

	"hoardgo/internal/env"
	"hoardgo/internal/heap"
)

// This file is the observability surface of the core allocator: an
// under-load integrity audit and per-heap occupancy sampling. Both take each
// heap's lock briefly and are safe to run concurrently with allocation;
// neither requires quiescence.

// Audit checks structural integrity and the emptiness invariant heap by
// heap, taking each heap's lock in turn, and is safe to run while other
// threads allocate. It is CheckIntegrity minus the two pieces that need
// quiescence: the remote-stack count comparison inside each superblock
// (in-flight pushes make it racy) and the global live-gauge crosscheck
// (u, committed bytes, and the live gauge cannot be read atomically across
// heaps). e is charged for the lock traffic and list scans the audit
// performs.
func (h *Hoard) Audit(e env.Env) error {
	for _, hp := range h.heaps {
		env.LockWith(hp.Lock, e, "audit")
		err := hp.CheckIntegrityOnline()
		// The invariant complaint applies only when the accounted books
		// match the live words: lock-free traffic legitimately leaves the
		// accounted u lagging until the next reconciliation, and the hint
		// path is already watching the live figure.
		if err == nil && hp.ID != 0 && hp.LiveU() == hp.U() && hp.InvariantViolated() &&
			hp.FindEvictable(e) == nil && hp.InvariantViolatedUsable() {
			err = fmt.Errorf("hoard: heap %d violates emptiness invariant with no evictable superblock (u=%d a=%d)",
				hp.ID, hp.U(), hp.A())
		}
		hp.Lock.Unlock(e)
		if err != nil {
			return err
		}
	}
	return nil
}

// SampleHeaps snapshots every heap's occupancy, taking each heap's lock in
// turn. With detail the samples include per-class breakdowns. Heaps are
// sampled at different instants, so cross-heap sums are approximate under
// load — fine for a metrics timeline, not for accounting checks.
func (h *Hoard) SampleHeaps(e env.Env, detail bool) []heap.Occupancy {
	out := make([]heap.Occupancy, len(h.heaps))
	for i, hp := range h.heaps {
		hp.Lock.Lock(e)
		out[i] = hp.SampleOccupancy(detail)
		hp.Lock.Unlock(e)
	}
	return out
}

// SampleHeapsQuiescent is SampleHeaps without the locks, for an allocator
// that has gone quiet — e.g. after a simulator run, whose locks cannot be
// taken from outside the simulation.
func (h *Hoard) SampleHeapsQuiescent(detail bool) []heap.Occupancy {
	out := make([]heap.Occupancy, len(h.heaps))
	for i, hp := range h.heaps {
		out[i] = hp.SampleOccupancy(detail)
	}
	return out
}
