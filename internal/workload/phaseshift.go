package workload

import (
	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// PhaseShiftConfig parameterizes the paper's O(P) blowup scenario for
// private heaps with ownership (§2.2): a program whose allocation phases
// migrate from thread to thread. In each phase one thread allocates the
// program's whole live set, works on it, and frees it — then the next
// thread takes over. Freed memory returns to each phase's own heap or
// arena, so ownership-based allocators accumulate one live-set copy per
// thread (P-fold blowup); Hoard's global heap recycles the same memory
// across phases.
type PhaseShiftConfig struct {
	// Threads is the worker count; each phase belongs to one thread.
	Threads int
	// Phases is the total number of allocation phases (>= Threads to
	// visit every thread).
	Phases int
	// LiveObjects and ObjSize define the per-phase live set.
	LiveObjects, ObjSize int
	// AfterRound, if set, runs on the phase's owning thread after its frees
	// and before the phase's committed-memory sample; the footprint
	// experiments hook a scavenge pass here.
	AfterRound func(e env.Env, phase int)
}

// DefaultPhaseShift gives the experiment's usual shape.
func DefaultPhaseShift(threads int) PhaseShiftConfig {
	return PhaseShiftConfig{Threads: threads, Phases: 2 * threads, LiveObjects: 1000, ObjSize: 64}
}

// PhaseShift runs the experiment and returns the committed-memory sample
// after each phase alongside the usual Result.
func PhaseShift(h *Harness, cfg PhaseShiftConfig) (Result, []int64) {
	committed := make([]int64, cfg.Phases)
	barrier := h.NewBarrier(cfg.Threads)
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		for phase := 0; phase < cfg.Phases; phase++ {
			if phase%cfg.Threads == id {
				ps := make([]alloc.Ptr, cfg.LiveObjects)
				for i := range ps {
					ps[i] = a.Malloc(t, cfg.ObjSize)
					h.OnAlloc(cfg.ObjSize)
					WriteObj(a, e, ps[i], cfg.ObjSize)
				}
				for _, p := range ps {
					a.Free(t, p)
					h.OnFree(cfg.ObjSize)
				}
				if cfg.AfterRound != nil {
					cfg.AfterRound(e, phase)
				}
				committed[phase] = a.Space().Committed()
			}
			barrier.Wait(e)
		}
	})
	ops := int64(cfg.Phases) * int64(cfg.LiveObjects) * 2
	return h.Result(cfg.Threads, ops), committed
}
