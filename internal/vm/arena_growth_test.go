//go:build linux && (amd64 || arm64)

package vm

import "testing"

// TestArenaSlotExhaustionDegrades drains a four-slot slot region and keeps
// reserving superblock-sized spans: the overflow spans must come from the
// large path (no panic), resolve through Lookup, hold data, and recycle.
func TestArenaSlotExhaustionDegrades(t *testing.T) {
	a := testArena(t, ArenaOptions{
		SpanSize:         8192,
		SlotRegionBytes:  4 * 8192,
		LargeRegionBytes: 16 * 8192,
	})

	var spans []*Span
	for i := 0; i < 12; i++ {
		sp := a.Reserve(8192, 8192, i)
		sp.Data()[0] = byte(i)
		sp.Data()[8191] = byte(i)
		spans = append(spans, sp)
	}
	for i, sp := range spans {
		if got := a.Lookup(sp.Base + 4096); got != sp {
			t.Fatalf("span %d interior lookup = %v, want %v", i, got, sp)
		}
		if sp.Data()[0] != byte(i) || sp.Data()[8191] != byte(i) {
			t.Fatalf("span %d lost its contents", i)
		}
	}
	// Overflow spans sit outside the slot region but are first-class: they
	// release cleanly and are recycled by the next same-size reserve.
	last := spans[len(spans)-1]
	a.Release(last)
	if got := a.Lookup(last.Base); got != nil {
		t.Fatalf("released overflow span still resolves to %v", got)
	}
	re := a.Reserve(8192, 8192, "re")
	if re.Base != last.Base {
		t.Fatalf("overflow span not recycled: got %#x, want %#x", re.Base, last.Base)
	}
	a.Release(re)
	for _, sp := range spans[:len(spans)-1] {
		a.Release(sp)
	}
	if got := a.Reserved(); got != 0 {
		t.Fatalf("Reserved = %d after releasing everything", got)
	}
}

// TestArenaLargeRegionGrows exhausts a tiny large region and verifies the
// arena maps extension regions instead of panicking: spans in extensions
// resolve via Lookup, support decommit/recommit (the madvise path must find
// the right mapping), count in Stats.Grows, and unmap on Close.
func TestArenaLargeRegionGrows(t *testing.T) {
	a := testArena(t, ArenaOptions{
		SpanSize:         8192,
		SlotRegionBytes:  4 * 8192,
		LargeRegionBytes: 8 * 8192,
		GrowBytes:        32 * 8192,
	})

	// Each span is a quarter of the primary large region; the loop runs far
	// past it and into multiple extensions.
	const spanLen = 2 * 8192
	var spans []*Span
	for i := 0; i < 40; i++ {
		sp := a.Reserve(spanLen, 0, i)
		data := sp.Data()
		for j := range data {
			data[j] = byte(i)
		}
		spans = append(spans, sp)
	}
	st := a.Stats()
	if st.Grows < 2 {
		t.Fatalf("Grows = %d, want at least 2 extension mappings", st.Grows)
	}
	for i, sp := range spans {
		if got := a.Lookup(sp.Base + spanLen - 1); got != sp {
			t.Fatalf("span %d last-byte lookup = %v, want %v", i, got, sp)
		}
		if sp.Data()[0] != byte(i) {
			t.Fatalf("span %d lost its contents", i)
		}
	}

	// Decommit/recommit inside an extension region: the physical-page hooks
	// must resolve the extension mapping, and the OS zero-fills on return.
	ext := spans[len(spans)-1]
	ext.Decommit(0, PageSize)
	ext.Recommit(0, PageSize)
	if got := ext.Bytes(0, 1)[0]; got != 0 {
		t.Fatalf("recommitted extension byte = %#x, want 0", got)
	}
	if got := ext.Bytes(PageSize, 1)[0]; got != byte(len(spans)-1) {
		t.Fatal("untouched extension page lost its contents")
	}

	// An over-sized request gets an extension grown to fit it.
	huge := a.Reserve(int(64*8192), 0, "huge")
	if got := a.Lookup(huge.Base + uint64(huge.Len) - 1); got != huge {
		t.Fatalf("over-sized span lookup = %v, want %v", got, huge)
	}
	a.Release(huge)

	for _, sp := range spans {
		a.Release(sp)
	}
	if got := a.Reserved(); got != 0 {
		t.Fatalf("Reserved = %d after releasing everything", got)
	}
	// testArena's cleanup closes the arena; Close must unmap the extensions
	// without error, which the t.Cleanup assertion checks.
}
