package dlheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func newA() *Allocator { return New(lf) }

func th(a *Allocator, id int) *alloc.Thread {
	return a.NewThread(&env.RealEnv{ID: id})
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator { return New(lf) })
}

// TestCoalescingRestoresSegment is the defining boundary-tag property:
// after freeing everything, each segment coalesces back to a single free
// chunk.
func TestCoalescingRestoresSegment(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	rng := rand.New(rand.NewSource(4))
	var ps []alloc.Ptr
	for i := 0; i < 3000; i++ {
		ps = append(ps, a.Malloc(tt, 1+rng.Intn(2000)))
	}
	// Free in random order to exercise both-neighbor coalescing.
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	for _, p := range ps {
		a.Free(tt, p)
	}
	count, bytes := a.FreeChunks()
	if want := len(a.segs); count != want {
		t.Fatalf("%d free chunks after freeing all, want %d (one per segment)", count, want)
	}
	if want := uint64(len(a.segs)) * SegmentSize; bytes != want {
		t.Fatalf("free bytes %d, want %d", bytes, want)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitAndReuse: a large free chunk is split and the remainder is
// immediately reusable.
func TestSplitAndReuse(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	p := a.Malloc(tt, 10000)
	q := a.Malloc(tt, 10000)
	// Both should come from the same 256K segment.
	if (uint64(p))/SegmentSize != (uint64(q))/SegmentSize {
		s1 := a.space.Lookup(uint64(p))
		s2 := a.space.Lookup(uint64(q))
		if s1 != s2 {
			t.Fatalf("second alloc did not reuse the segment remainder")
		}
	}
	a.Free(tt, p)
	r := a.Malloc(tt, 9000) // fits in p's hole
	if uint64(r) != uint64(p) {
		t.Fatalf("freed hole not reused: %#x vs %#x", uint64(r), uint64(p))
	}
	a.Free(tt, q)
	a.Free(tt, r)
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	p := a.Malloc(tt, 64)
	a.Free(tt, p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(tt, p)
}

func TestUsableSizeIncludesSplitSlack(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	for _, sz := range []int{1, 8, 16, 17, 100, 1000, 31000} {
		p := a.Malloc(tt, sz)
		if us := a.UsableSize(p); us < sz {
			t.Fatalf("UsableSize(%d) = %d", sz, us)
		}
		a.Free(tt, p)
	}
}

func TestLargePathBypassesHeap(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	p := a.Malloc(tt, 100000)
	if a.UsableSize(p) < 100000 {
		t.Fatal("large too small")
	}
	before := a.space.Committed()
	a.Free(tt, p)
	if after := a.space.Committed(); after >= before {
		t.Fatalf("large free kept memory: %d -> %d", before, after)
	}
}

// TestPropertyChunkSequenceValid drives random operations and checks the
// full boundary-tag invariant set after every burst.
func TestPropertyChunkSequenceValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newA()
		tt := th(a, 0)
		var live []alloc.Ptr
		for burst := 0; burst < 10; burst++ {
			for op := 0; op < 120; op++ {
				if len(live) == 0 || rng.Intn(5) < 3 {
					sz := 1 + rng.Intn(5000)
					p := a.Malloc(tt, sz)
					buf := a.Bytes(p, sz)
					for i := range buf {
						buf[i] = byte(op)
					}
					live = append(live, p)
				} else {
					i := rng.Intn(len(live))
					a.Free(tt, live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			if err := a.CheckIntegrity(); err != nil {
				t.Log(err)
				return false
			}
		}
		for _, p := range live {
			a.Free(tt, p)
		}
		return a.CheckIntegrity() == nil && a.Stats().LiveBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestFragmentationOnSizeMix: the classic strength of coalescing heaps —
// committed memory stays close to live even under heavy size mixing.
func TestFragmentationOnSizeMix(t *testing.T) {
	a := newA()
	tt := th(a, 0)
	rng := rand.New(rand.NewSource(9))
	type obj struct {
		p  alloc.Ptr
		sz int
	}
	var live []obj
	var liveBytes int64
	for op := 0; op < 20000; op++ {
		if len(live) < 400 || rng.Intn(2) == 0 {
			sz := 1 + rng.Intn(3000)
			live = append(live, obj{a.Malloc(tt, sz), sz})
			liveBytes += int64(sz)
		} else {
			i := rng.Intn(len(live))
			a.Free(tt, live[i].p)
			liveBytes -= int64(live[i].sz)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	committed := a.space.Committed()
	if float64(committed) > 3.0*float64(liveBytes) {
		t.Fatalf("committed %d vs live %d: coalescing heap too fragmented", committed, liveBytes)
	}
}

func BenchmarkMallocFree(b *testing.B) {
	a := newA()
	tt := th(a, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(tt, a.Malloc(tt, 64))
	}
}

func BenchmarkMallocFreeSizeMix(b *testing.B) {
	a := newA()
	tt := th(a, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(tt, a.Malloc(tt, 8+(i*131)%4000))
	}
}
