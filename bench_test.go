package hoard_test

// Benchmark harness: one testing.B benchmark per figure and table of the
// paper's evaluation, plus real-goroutine microbenchmarks of the public
// API. The figure benches run the deterministic multiprocessor simulation
// and report the paper's metric as a custom unit:
//
//	virt_ms  — virtual milliseconds for the workload (lower is better)
//	Mops/s   — workload operations per virtual second
//	speedup1 — T(alloc, P=1) / T(alloc, P) for the same bench
//
// Because each iteration is a full deterministic simulation, run these with
// -benchtime=1x:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// cmd/hoardbench prints the same experiments as full sweep tables.
import (
	"fmt"
	"sync"
	"testing"

	hoard "hoardgo"
	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/experiments"
	"hoardgo/internal/tcache"
	"hoardgo/internal/workload"
)

// benchProcs are the processor counts exercised by figure benches (the
// paper's endpoints plus a midpoint).
var benchProcs = []int{1, 4, 14}

// baseCache memoizes each (figure, alloc) single-processor virtual time so
// speedup1 can be reported without re-running P=1 inside every sub-bench.
var (
	baseMu    sync.Mutex
	baseCache = map[string]int64{}
)

func figureBench(b *testing.B, id string) {
	def, ok := experiments.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	opts := experiments.Defaults(experiments.Quick)
	run := def.Run(opts.Scale)
	for _, name := range opts.Allocs {
		for _, p := range benchProcs {
			b.Run(fmt.Sprintf("%s/P=%d", name, p), func(b *testing.B) {
				var res workload.Result
				for i := 0; i < b.N; i++ {
					h := workload.NewSim(name, p, opts.Cost)
					res = run(h, p)
				}
				key := id + "/" + name
				baseMu.Lock()
				if p == 1 {
					baseCache[key] = res.ElapsedNS
				}
				base := baseCache[key]
				baseMu.Unlock()
				b.ReportMetric(float64(res.ElapsedNS)/1e6, "virt_ms")
				b.ReportMetric(res.Throughput()/1e6, "Mops/s")
				if base > 0 && res.ElapsedNS > 0 {
					b.ReportMetric(float64(base)/float64(res.ElapsedNS), "speedup1")
				}
			})
		}
	}
}

// F1-F7: the paper's figures.

func BenchmarkFigThreadtest(b *testing.B)   { figureBench(b, "threadtest") }
func BenchmarkFigShbench(b *testing.B)      { figureBench(b, "shbench") }
func BenchmarkFigLarson(b *testing.B)       { figureBench(b, "larson") }
func BenchmarkFigActiveFalse(b *testing.B)  { figureBench(b, "active-false") }
func BenchmarkFigPassiveFalse(b *testing.B) { figureBench(b, "passive-false") }
func BenchmarkFigBEM(b *testing.B)          { figureBench(b, "bem") }
func BenchmarkFigBarnesHut(b *testing.B)    { figureBench(b, "barneshut") }

// T2: fragmentation under Hoard per benchmark (reported as frag_x).
func BenchmarkTableFragmentation(b *testing.B) {
	opts := experiments.Defaults(experiments.Quick)
	for _, def := range experiments.Figures() {
		b.Run(def.ID, func(b *testing.B) {
			var res workload.Result
			run := def.Run(opts.Scale)
			for i := 0; i < b.N; i++ {
				h := workload.NewSim("hoard", 14, opts.Cost)
				res = run(h, 14)
			}
			b.ReportMetric(res.Fragmentation(), "frag_x")
			b.ReportMetric(float64(res.VM.PeakCommitted)/1024, "peakKB")
		})
	}
}

// T3: uniprocessor overhead — virtual runtime at P=1, per allocator,
// normalized to serial (norm_serial).
func BenchmarkTableUniproc(b *testing.B) {
	opts := experiments.Defaults(experiments.Quick)
	def, _ := experiments.FigureByID("threadtest")
	run := def.Run(opts.Scale)
	serial := int64(0)
	for _, name := range append([]string{"serial"}, opts.Allocs...) {
		name := name
		b.Run(name, func(b *testing.B) {
			var res workload.Result
			for i := 0; i < b.N; i++ {
				h := workload.NewSim(name, 1, opts.Cost)
				res = run(h, 1)
			}
			if name == "serial" && serial == 0 {
				serial = res.ElapsedNS
			}
			b.ReportMetric(float64(res.ElapsedNS)/1e6, "virt_ms")
			if serial > 0 {
				b.ReportMetric(float64(res.ElapsedNS)/float64(serial), "norm_serial")
			}
		})
	}
}

// T4: producer-consumer blowup — final committed memory over the live set
// (blowup_x) and over the first round (growth_x).
func BenchmarkTableBlowup(b *testing.B) {
	opts := experiments.Defaults(experiments.Quick)
	cfg := workload.DefaultProdCons(4)
	cfg.Rounds = 20
	ideal := int64(cfg.Batch * cfg.ObjSize)
	for _, name := range opts.Allocs {
		b.Run(name, func(b *testing.B) {
			var series []int64
			for i := 0; i < b.N; i++ {
				h := workload.NewSim(name, 4, opts.Cost)
				_, series = workload.ProdCons(h, cfg)
			}
			last := series[len(series)-1]
			b.ReportMetric(float64(last)/float64(ideal), "blowup_x")
			b.ReportMetric(float64(last)/float64(series[0]), "growth_x")
		})
	}
}

// Real-goroutine microbenchmarks of the public API (wall-clock ns/op).

func BenchmarkMallocFree(b *testing.B) {
	for _, name := range allocators.Names() {
		b.Run(name, func(b *testing.B) {
			a := hoard.MustNew(hoard.Config{Policy: hoard.Policy(name), Procs: 4})
			t := a.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Free(t.Malloc(64))
			}
		})
	}
}

func BenchmarkMallocFreeSizeMix(b *testing.B) {
	for _, name := range allocators.Names() {
		b.Run(name, func(b *testing.B) {
			a := hoard.MustNew(hoard.Config{Policy: hoard.Policy(name), Procs: 4})
			t := a.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Free(t.Malloc(8 + (i*37)%2048))
			}
		})
	}
}

// BenchmarkMallocFreeParallel measures contention with real goroutines
// (on a multicore host this is where serial collapses; the simulated
// figures capture the same effect machine-independently).
func BenchmarkMallocFreeParallel(b *testing.B) {
	for _, name := range allocators.Names() {
		b.Run(name, func(b *testing.B) {
			a := hoard.MustNew(hoard.Config{Policy: hoard.Policy(name), Procs: 8})
			b.RunParallel(func(pb *testing.PB) {
				t := a.NewThread()
				for pb.Next() {
					t.Free(t.Malloc(64))
				}
			})
		})
	}
}

// BenchmarkProducerConsumerReal drives cross-goroutine frees through a
// channel — the blowup pattern, timed for real.
func BenchmarkProducerConsumerReal(b *testing.B) {
	for _, name := range []string{"hoard", "ownership", "private"} {
		b.Run(name, func(b *testing.B) {
			a := hoard.MustNew(hoard.Config{Policy: hoard.Policy(name), Procs: 2})
			ch := make(chan hoard.Ptr, 1024)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				t := a.NewThread()
				for p := range ch {
					t.Free(p)
				}
			}()
			t := a.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch <- t.Malloc(64)
			}
			close(ch)
			wg.Wait()
		})
	}
}

// BenchmarkTCacheBatchLocks measures the PR's headline number for real: heap
// lock acquisitions per cached malloc/free pair through the thread cache,
// with the native batch transfer enabled versus hidden behind alloc.NoBatch
// (so every refill/flush falls back to per-block transfers). With magazine
// capacity 32, a half-magazine transfer is 16 blocks, so batch should cut
// locks/op by an order of magnitude.
func BenchmarkTCacheBatchLocks(b *testing.B) {
	const capacity = 32
	for _, arm := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"per-block", true}} {
		b.Run(arm.name, func(b *testing.B) {
			clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
			var inner alloc.Allocator = core.New(core.Config{Heaps: 2}, clf)
			if arm.noBatch {
				inner = alloc.NoBatch{Allocator: inner}
			}
			a := tcache.New(inner, tcache.Config{Capacity: capacity})
			th := a.NewThread(&env.RealEnv{})
			ptrs := make([]alloc.Ptr, 2*capacity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A burst of 2*capacity defeats the magazine, so every
				// iteration forces refills and flushes — the transfers
				// whose lock cost the two arms differ on.
				for j := range ptrs {
					ptrs[j] = a.Malloc(th, 64)
				}
				for j := range ptrs {
					a.Free(th, ptrs[j])
				}
			}
			b.StopTimer()
			ops := float64(b.N) * float64(len(ptrs))
			b.ReportMetric(float64(clf.Acquires())/ops, "locks/op")
			st := a.Stats()
			b.ReportMetric(float64(st.BatchedBlocks)/ops, "batched/op")
		})
	}
}

// BenchmarkProducerConsumerContended is the contended cross-thread-free
// pattern instrumented for lock traffic: one goroutine allocates, N others
// free, and every heap-lock acquisition inside Hoard is counted. Before the
// lock-free remote-free path, each of the b.N remote frees cost at least one
// owning-heap lock acquisition (locks/op >= 2 counting the malloc); with it,
// remote frees CAS-push and locks/op collapses toward the producer's 1.
// fastfrac is the fraction of remote frees that avoided a lock entirely.
func BenchmarkProducerConsumerContended(b *testing.B) {
	for _, consumers := range []int{1, 4} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
			h := core.New(core.Config{Heaps: 8}, clf)
			ch := make(chan alloc.Ptr, 4096)
			var wg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					th := h.NewThread(&env.RealEnv{ID: 1 + c})
					for p := range ch {
						h.Free(th, p)
					}
				}(c)
			}
			th := h.NewThread(&env.RealEnv{ID: 0})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch <- h.Malloc(th, 64)
			}
			close(ch)
			wg.Wait()
			b.StopTimer()
			st := h.Stats()
			b.ReportMetric(float64(clf.Acquires())/float64(b.N), "locks/op")
			if st.RemoteFrees > 0 {
				b.ReportMetric(float64(st.RemoteFastFrees)/float64(st.RemoteFrees), "fastfrac")
			}
		})
	}
}
