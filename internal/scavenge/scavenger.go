package scavenge

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Target is the allocator surface the background scavenger drives. Both
// methods are try-based: ok=false means the global heap was too contended to
// even inspect, and the scavenger backs off exponentially — it must never
// queue behind allocation traffic (the same reason core's remote-free path
// uses TryLock nudges).
type Target interface {
	// EmptyBytes reports the committed bytes parked in empty superblocks
	// on the global heap.
	EmptyBytes() (bytes int64, ok bool)
	// Scavenge decommits up to maxBytes of empties parked at least
	// coldAge ago, oldest first, returning the bytes released.
	Scavenge(maxBytes int64, coldAge time.Duration) (released int64, ok bool)
}

// Stats is a snapshot of a Scavenger's activity.
type Stats struct {
	// Wakeups counts poll-loop iterations.
	Wakeups int64
	// Passes counts scavenge passes that released at least one byte.
	Passes int64
	// ReleasedBytes is the cumulative bytes this scavenger released.
	ReleasedBytes int64
	// Backoffs counts polls aborted because the global heap was contended.
	Backoffs int64
}

// Scavenger runs the release policy in a background goroutine against a
// Target. Start and Stop are idempotent pairs; Stop waits for the goroutine
// to exit, so the allocator may be torn down immediately after.
type Scavenger struct {
	target Target
	cfg    Config

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}

	// The pacing knobs live in atomics the loop re-reads every tick (via
	// Pacer.Retune), so SetWatermarks/SetRate — from the self-tuning
	// controller or a manual caller — take effect without Stop/Start. The
	// pacer itself stays owned by the loop goroutine.
	highWater atomic.Int64
	lowWater  atomic.Int64
	rate      atomic.Int64
	burst     atomic.Int64

	wakeups  atomic.Int64
	passes   atomic.Int64
	released atomic.Int64
	backoffs atomic.Int64
}

// New builds a Scavenger (not yet running) over the target. It panics on an
// invalid config.
func New(target Target, cfg Config) *Scavenger {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Scavenger{target: target, cfg: cfg.WithDefaults()}
	s.highWater.Store(s.cfg.HighWaterBytes)
	s.lowWater.Store(s.cfg.LowWaterBytes)
	s.rate.Store(s.cfg.BytesPerSec)
	s.burst.Store(s.cfg.BurstBytes)
	return s
}

// SetWatermarks retunes the hysteresis watermarks; the loop applies them on
// its next tick, running or not. Returns an error on a low watermark above
// the high one or a negative value.
func (s *Scavenger) SetWatermarks(high, low int64) error {
	if high < 0 || low < 0 || low > high {
		return fmt.Errorf("scavenge: bad watermarks (high %d, low %d)", high, low)
	}
	s.highWater.Store(high)
	s.lowWater.Store(low)
	return nil
}

// Watermarks returns the watermarks currently in force.
func (s *Scavenger) Watermarks() (high, low int64) {
	return s.highWater.Load(), s.lowWater.Load()
}

// SetRate retunes the token-bucket refill rate and burst cap; the loop
// applies them on its next tick. Returns an error on a negative rate or
// non-positive burst.
func (s *Scavenger) SetRate(bytesPerSec, burstBytes int64) error {
	if bytesPerSec < 0 || burstBytes <= 0 {
		return fmt.Errorf("scavenge: bad rate (%d B/s, burst %d)", bytesPerSec, burstBytes)
	}
	s.rate.Store(bytesPerSec)
	s.burst.Store(burstBytes)
	return nil
}

// Rate returns the refill rate and burst cap currently in force.
func (s *Scavenger) Rate() (bytesPerSec, burstBytes int64) {
	return s.rate.Load(), s.burst.Load()
}

// Start launches the background goroutine. Starting a running scavenger is a
// no-op.
func (s *Scavenger) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

// Stop halts the background goroutine and waits for it to exit. Stopping a
// stopped scavenger is a no-op.
func (s *Scavenger) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Running reports whether the background goroutine is live.
func (s *Scavenger) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop != nil
}

// Stats snapshots the scavenger's counters.
func (s *Scavenger) Stats() Stats {
	return Stats{
		Wakeups:       s.wakeups.Load(),
		Passes:        s.passes.Load(),
		ReleasedBytes: s.released.Load(),
		Backoffs:      s.backoffs.Load(),
	}
}

func (s *Scavenger) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	pacer := NewPacer(s.cfg)
	timer := time.NewTimer(s.cfg.Interval)
	defer timer.Stop()
	delay := s.cfg.Interval
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		s.wakeups.Add(1)
		delay = s.tick(pacer, delay)
		timer.Reset(delay)
	}
}

// tick runs one poll: inspect, pace, maybe scavenge. It returns the delay
// until the next poll — the configured interval normally, doubled (up to
// MaxBackoff) after a contended inspection or pass.
func (s *Scavenger) tick(pacer *Pacer, delay time.Duration) time.Duration {
	// Re-read the pacing knobs each cycle: SetWatermarks/SetRate may have
	// retuned them since the pacer was built at Start.
	pacer.Retune(s.highWater.Load(), s.lowWater.Load(), s.rate.Load(), s.burst.Load())
	empty, ok := s.target.EmptyBytes()
	if !ok {
		s.backoffs.Add(1)
		return s.backoff(delay)
	}
	grant := pacer.Grant(empty, time.Now().UnixNano())
	if grant <= 0 {
		return s.cfg.Interval
	}
	released, ok := s.target.Scavenge(grant, s.cfg.ColdAge)
	if !ok {
		s.backoffs.Add(1)
		return s.backoff(delay)
	}
	pacer.Spend(released)
	if released > 0 {
		s.passes.Add(1)
		s.released.Add(released)
	}
	return s.cfg.Interval
}

func (s *Scavenger) backoff(delay time.Duration) time.Duration {
	delay *= 2
	if delay > s.cfg.MaxBackoff {
		delay = s.cfg.MaxBackoff
	}
	if delay < s.cfg.Interval {
		delay = s.cfg.Interval
	}
	return delay
}
