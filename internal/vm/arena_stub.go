//go:build !(linux && (amd64 || arm64))

package vm

// NewArena is unavailable on this platform: the arena backend needs mmap,
// mprotect, and madvise with Linux semantics. Callers fall back to the
// simulated backend.
func NewArena(opts ArenaOptions) (Backend, error) {
	return nil, ErrArenaUnsupported
}
