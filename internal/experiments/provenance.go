package experiments

import (
	"crypto/sha256"
	"fmt"
	"os/exec"
	"strings"
)

// Provenance stamps every committed benchmark artifact with what produced
// it: the git revision of the tree and a fingerprint of the run
// configuration, so a BENCH_*.json can be matched to the exact code and
// parameters that generated it (and a regeneration under different settings
// is detectable from the file alone). Every artifact writer — the
// cmd/hoardbench BENCH_PR3/PR5/PR6/PR7 records and the cmd/hoardload
// BENCH_PR9 record — stamps through this one implementation; the format
// cannot drift between them.
type Provenance struct {
	GitRevision       string `json:"git_revision"`
	ConfigFingerprint string `json:"config_fingerprint"`
}

// GitRevision returns the current HEAD commit hash, with "-dirty" appended
// when the working tree has uncommitted changes, or "unknown" outside a git
// checkout.
func GitRevision() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		rev += "-dirty"
	}
	return rev
}

// Fingerprint hashes the canonical run parameters. The input is a plain
// "|"-joined string rather than marshalled structs so the fingerprint only
// changes when a parameter that matters changes (and parameter order is
// part of the contract).
func Fingerprint(parts ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(parts, "|")))
	return fmt.Sprintf("%x", sum[:])
}

// Stamp builds the provenance record for an artifact: schema and scale
// always lead the fingerprint, followed by the writer's own canonical
// parameter strings.
func Stamp(schema, scale string, parts ...string) Provenance {
	return Provenance{
		GitRevision:       GitRevision(),
		ConfigFingerprint: Fingerprint(append([]string{schema, scale}, parts...)...),
	}
}

// FingerprintParts returns the simulator option fields that belong in an
// artifact fingerprint, in the order the BENCH_PR3/PR5/PR6/PR7 writers have
// always used.
func (o Options) FingerprintParts() []string {
	return []string{
		fmt.Sprintf("procs=%v", o.Procs),
		fmt.Sprintf("allocs=%v", o.Allocs),
		fmt.Sprintf("cost=%+v", o.Cost),
	}
}
