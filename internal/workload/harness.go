// Package workload implements the paper's seven benchmark programs —
// threadtest, shbench, Larson, active-false, passive-false, a BEMengine-
// style solid-modeling surrogate, and Barnes-Hut — plus the producer-
// consumer blowup microbenchmark from §2.2.
//
// Every benchmark is written once against a Harness and runs in two modes:
//
//   - Real mode: goroutines, sync.Mutex locks, wall-clock time. Used by unit
//     tests (including -race) and the testing.B benchmarks.
//   - Simulated mode: the internal/simproc discrete-event multiprocessor,
//     virtual time, modelled cache coherence. Used to regenerate the paper's
//     1-14 processor figures deterministically.
//
// The benchmark bodies perform real allocator calls and real memory writes
// in both modes; the harness only decides who schedules the threads and
// what a lock or a cache line costs.
package workload

import (
	"sync"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/cachesim"
	"hoardgo/internal/env"
	"hoardgo/internal/simproc"
	"hoardgo/internal/vm"
)

// Barrier synchronizes harness threads between workload phases.
type Barrier interface {
	// Wait blocks the calling thread until all participants arrive.
	Wait(e env.Env)
}

// Result is the outcome of one benchmark run.
type Result struct {
	// Allocator is the allocator's name.
	Allocator string
	// Procs is the processor count (virtual in sim mode, GOMAXPROCS
	// upper bound in real mode).
	Procs int
	// Threads is the number of worker threads.
	Threads int
	// Ops counts workload-defined operations (typically mallocs+frees).
	Ops int64
	// ElapsedNS is virtual nanoseconds in sim mode, wall nanoseconds in
	// real mode.
	ElapsedNS int64
	// MaxLive is the workload-tracked peak of requested live bytes (the
	// paper's "memory in use", denominator of the fragmentation ratio).
	MaxLive int64
	// Alloc is the allocator's final counters.
	Alloc alloc.Stats
	// VM is the simulated OS accounting; VM.PeakCommitted is the paper's
	// "max heap" (numerator of the fragmentation ratio).
	VM vm.Stats
	// Cache and Locks are populated in sim mode only.
	Cache cachesim.Stats
	Locks []simproc.LockStat
}

// Throughput returns operations per virtual (or wall) second.
func (r Result) Throughput() float64 {
	if r.ElapsedNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.ElapsedNS) / 1e9)
}

// Fragmentation returns max-heap over max-live, the paper's Table of
// fragmentation results.
func (r Result) Fragmentation() float64 {
	if r.MaxLive == 0 {
		return 0
	}
	return float64(r.VM.PeakCommitted) / float64(r.MaxLive)
}

// Harness couples an allocator to an execution mode. Create one per run
// with NewReal or NewSim; a Harness is single-use.
type Harness struct {
	alloc     alloc.Allocator
	allocName string
	procs     int
	world     *simproc.World // nil in real mode

	requested alloc.Accounting
	elapsedNS int64
	started   bool
}

// NewSim creates a harness over the named allocator on a simulated
// multiprocessor with procs CPUs and the given cost model.
func NewSim(allocName string, procs int, cost simproc.CostModel) *Harness {
	return NewSimMaker(allocName, procs, cost, nil)
}

// NewSimMaker is NewSim with a custom allocator constructor (nil selects
// the registry's); the ablation experiments use it to vary Hoard's
// parameters.
func NewSimMaker(allocName string, procs int, cost simproc.CostModel, mk allocators.Maker) *Harness {
	w := simproc.NewWorld(procs, cost)
	var a alloc.Allocator
	if mk != nil {
		a = mk(procs, w)
	} else {
		a = allocators.MustMake(allocName, procs, w)
	}
	return &Harness{
		alloc:     a,
		allocName: allocName,
		procs:     procs,
		world:     w,
	}
}

// NewReal creates a harness over the named allocator using real goroutines
// and wall-clock time. procs only sizes the allocator (e.g. Hoard's heap
// count); actual parallelism is up to GOMAXPROCS.
func NewReal(allocName string, procs int) *Harness {
	return NewRealMaker(allocName, procs, nil)
}

// NewRealMaker is NewReal with a custom allocator constructor (nil selects
// the registry's). The maker receives the real lock factory; the
// lock-attribution experiments wrap it in a counting one instead.
func NewRealMaker(allocName string, procs int, mk allocators.Maker) *Harness {
	var a alloc.Allocator
	if mk != nil {
		a = mk(procs, env.RealLockFactory{})
	} else {
		a = allocators.MustMake(allocName, procs, env.RealLockFactory{})
	}
	return &Harness{
		alloc:     a,
		allocName: allocName,
		procs:     procs,
	}
}

// Allocator exposes the harness's allocator (for result inspection).
func (h *Harness) Allocator() alloc.Allocator { return h.alloc }

// World exposes the simulated world, or nil in real mode.
func (h *Harness) World() *simproc.World { return h.world }

// OnAlloc records sz requested bytes becoming live; workloads call it after
// each malloc so Result.MaxLive reflects the program's true demand.
func (h *Harness) OnAlloc(sz int) { h.requested.OnMalloc(sz) }

// OnFree records sz requested bytes dying.
func (h *Harness) OnFree(sz int) { h.requested.OnFree(sz) }

// Par runs body as n concurrent threads (ids 0..n-1) and waits for all of
// them. Each body receives its thread id, environment, and registered
// allocator thread. Par may be called once per Harness; multi-phase
// workloads synchronize with barriers inside the single Par.
func (h *Harness) Par(n int, body func(id int, e env.Env, t *alloc.Thread)) {
	if h.started {
		panic("workload: Par called twice on one Harness")
	}
	h.started = true
	if h.world != nil {
		for i := 0; i < n; i++ {
			id := i
			h.world.SpawnOn(id%h.procs, func(e env.Env) {
				body(id, e, h.alloc.NewThread(e))
			})
		}
		h.elapsedNS = h.world.Run()
		return
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e := &env.RealEnv{ID: id}
			body(id, e, h.alloc.NewThread(e))
		}(i)
	}
	wg.Wait()
	h.elapsedNS = time.Since(start).Nanoseconds()
}

// NewBarrier returns a reusable barrier for n participants, usable inside
// Par bodies.
func (h *Harness) NewBarrier(n int) Barrier {
	if h.world != nil {
		return simBarrier{h.world.NewBarrier(n)}
	}
	b := &realBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

type simBarrier struct{ b *simproc.Barrier }

func (s simBarrier) Wait(e env.Env) { s.b.Wait(e) }

// realBarrier is a reusable generation-counting barrier.
type realBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
}

func (b *realBarrier) Wait(env.Env) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Result assembles the run's outcome. ops is the workload's operation
// count.
func (h *Harness) Result(threads int, ops int64) Result {
	r := Result{
		Allocator: h.allocName,
		Procs:     h.procs,
		Threads:   threads,
		Ops:       ops,
		ElapsedNS: h.elapsedNS,
		Alloc:     h.alloc.Stats(),
		VM:        h.alloc.Space().Stats(),
	}
	var req alloc.Stats
	h.requested.Fill(&req)
	r.MaxLive = req.PeakLiveBytes
	if h.world != nil {
		r.Cache = h.world.CacheStats()
		r.Locks = h.world.LockStats()
	}
	return r
}

// WriteObj simulates the application writing an object: it really writes the
// block's bytes (so real-mode false sharing is physical) and reports the
// access to the cache model (so sim-mode false sharing is charged).
func WriteObj(a alloc.Allocator, e env.Env, p alloc.Ptr, n int) {
	buf := a.Bytes(p, n)
	for i := range buf {
		buf[i]++
	}
	e.Touch(uint64(p), n, true)
	e.Charge(env.OpWork, int64(n))
}

// ReadObj simulates the application reading an object.
func ReadObj(a alloc.Allocator, e env.Env, p alloc.Ptr, n int) byte {
	buf := a.Bytes(p, n)
	var x byte
	for i := range buf {
		x ^= buf[i]
	}
	e.Touch(uint64(p), n, false)
	e.Charge(env.OpWork, int64(n))
	return x
}
