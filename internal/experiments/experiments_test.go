package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// microOpts shrinks everything so the whole suite runs in seconds.
func microOpts() Options {
	o := Defaults(Quick)
	o.Procs = []int{1, 2, 4}
	return o
}

func TestFiguresWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range Figures() {
		if f.ID == "" || f.Title == "" || f.Paper == "" || f.Run == nil {
			t.Fatalf("incomplete figure %+v", f)
		}
		if ids[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		ids[f.ID] = true
		if f.Metric != "speedup" && f.Metric != "throughput" {
			t.Fatalf("figure %s: bad metric %q", f.ID, f.Metric)
		}
	}
	if len(ids) != 7 {
		t.Fatalf("%d figures, want the paper's 7", len(ids))
	}
	if _, ok := FigureByID("threadtest"); !ok {
		t.Fatal("FigureByID(threadtest) missing")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Fatal("FigureByID accepted unknown id")
	}
}

func TestRunFigureShape(t *testing.T) {
	opts := microOpts()
	opts.Allocs = []string{"hoard", "serial"}
	def, _ := FigureByID("threadtest")
	var calls int
	fig := RunFigure(def, opts, func(string, int) { calls++ })
	if calls != len(opts.Allocs)*len(opts.Procs) {
		t.Fatalf("progress called %d times", calls)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Results) != len(opts.Procs) {
			t.Fatalf("series %s has %d points", s.Allocator, len(s.Results))
		}
		sp := s.Speedup()
		if sp[0] != 1.0 {
			t.Fatalf("speedup at P=1 is %v, want 1", sp[0])
		}
	}
	// The headline shape at miniature scale: Hoard's 4-CPU speedup beats
	// serial's.
	var hoard4, serial4 float64
	for _, s := range fig.Series {
		sp := s.Speedup()
		if s.Allocator == "hoard" {
			hoard4 = sp[len(sp)-1]
		} else {
			serial4 = sp[len(sp)-1]
		}
	}
	if hoard4 <= serial4 {
		t.Fatalf("hoard speedup %.2f <= serial %.2f", hoard4, serial4)
	}
	var buf bytes.Buffer
	fig.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "hoard") || !strings.Contains(out, "P=4") {
		t.Fatalf("Format output missing content:\n%s", out)
	}
}

func TestTablesRun(t *testing.T) {
	opts := microOpts()
	opts.Allocs = []string{"hoard", "serial", "private"}
	cases := []struct {
		name string
		run  func(Options, func(string, int)) Table
		rows int
	}{
		{"frag", Fragmentation, 5}, // figures minus the two false-sharing microbenches
		{"uniproc", Uniproc, 3},
		{"blowup", Blowup, 3},
		{"blowup-shift", BlowupShift, 3},
		{"coherence", Coherence, 6},
		{"ablate-f", AblateF, 4},
		{"ablate-s", AblateS, 4},
		{"ablate-k", AblateK, 4},
		{"ablate-heaps", AblateHeaps, 3},
		{"tcache", AblateTCache, 6},
		{"ablate-release", AblateRelease, 3},
		{"ablate-batch", AblateBatch, 8},
		{"contention", Contention, 3},
		{"cost-sensitivity", CostSensitivity, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := tc.run(opts, nil)
			if len(tbl.Rows) != tc.rows {
				t.Fatalf("%d rows, want %d", len(tbl.Rows), tc.rows)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row width %d != header %d", len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			tbl.Format(&buf)
			if buf.Len() == 0 {
				t.Fatal("empty Format output")
			}
		})
	}
}

func TestCatalog(t *testing.T) {
	var buf bytes.Buffer
	Catalog(&buf)
	for _, want := range []string{"threadtest", "larson", "barnes-hut"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("catalog missing %q", want)
		}
	}
}

// TestBlowupTableShape pins the taxonomy: the private allocator's growth
// column must dwarf Hoard's.
func TestBlowupTableShape(t *testing.T) {
	opts := microOpts()
	opts.Allocs = []string{"hoard", "private"}
	tbl := Blowup(opts, nil)
	growth := map[string]string{}
	for _, row := range tbl.Rows {
		growth[row[0]] = row[3]
	}
	var hoardG, privG float64
	if _, err := fmt.Sscanf(growth["hoard"], "%fx", &hoardG); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(growth["private"], "%fx", &privG); err != nil {
		t.Fatal(err)
	}
	if privG < 3*hoardG {
		t.Fatalf("private growth %.2f vs hoard %.2f: blowup shape missing", privG, hoardG)
	}
}

func TestRenderFormats(t *testing.T) {
	opts := microOpts()
	opts.Allocs = []string{"hoard"}
	def, _ := FigureByID("threadtest")
	fig := RunFigure(def, opts, nil)
	tbl := Blowup(opts, nil)
	for _, of := range []OutputFormat{FormatText, FormatCSV, FormatMarkdown} {
		var fb, tb bytes.Buffer
		fig.Render(&fb, of)
		tbl.Render(&tb, of)
		if fb.Len() == 0 || tb.Len() == 0 {
			t.Fatalf("format %s produced empty output", of)
		}
	}
	var b bytes.Buffer
	fig.Render(&b, FormatCSV)
	if !strings.Contains(b.String(), "allocator,P=1") {
		t.Fatalf("csv header missing:\n%s", b.String())
	}
	b.Reset()
	tbl.Render(&b, FormatMarkdown)
	if !strings.Contains(b.String(), "| ---") {
		t.Fatalf("markdown separator missing:\n%s", b.String())
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat accepted xml")
	}
}
