package alloc

import (
	"sync"
	"testing"
)

func TestShardedAccountingAggregates(t *testing.T) {
	a := NewSharded(4)
	a.OnMalloc(1, 100)
	a.OnMalloc(2, 50)
	a.OnFree(2, 50) // freed against the shard that allocated
	a.OnFree(3, 60) // cross-shard free: shard 3 goes negative
	a.OnMalloc(3, 60)
	a.OnLarge(0)
	var st Stats
	a.Fill(&st)
	if st.Mallocs != 3 || st.Frees != 2 || st.LargeMallocs != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if st.LiveBytes != 100 || a.Live() != 100 {
		t.Fatalf("LiveBytes = %d / %d, want 100", st.LiveBytes, a.Live())
	}
	// Summed per-shard peaks are an upper bound on the true peak.
	if st.PeakLiveBytes < 100 {
		t.Fatalf("PeakLiveBytes = %d below true peak", st.PeakLiveBytes)
	}
}

func TestShardedAccountingShardClamp(t *testing.T) {
	a := NewSharded(2)
	a.OnMalloc(7, 8) // 7 % 2 -> shard 1
	a.OnFree(-3, 8)  // negative ids must not panic
	if got := a.Live(); got != 0 {
		t.Fatalf("Live = %d, want 0", got)
	}
}

func TestShardedAccountingConcurrent(t *testing.T) {
	a := NewSharded(8)
	const workers = 8
	const each = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				a.OnMalloc(w, 16)
				a.OnFree(w, 16)
			}
		}(w)
	}
	wg.Wait()
	var st Stats
	a.Fill(&st)
	if st.Mallocs != workers*each || st.Frees != workers*each || st.LiveBytes != 0 {
		t.Fatalf("after concurrent ops: %+v", st)
	}
}
