GO ?= go

.PHONY: check build test race vet bench metrics-smoke

# check is the tier-1 gate: vet, build, and the full suite under the race
# detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure benchmarks are full deterministic simulations; run each once. The
# key batching benches (threadtest/larson figures, the contended
# producer-consumer probe, and the tcache batch-locks comparison) run here,
# then the committed artifact is regenerated.
bench:
	$(GO) test -benchtime=1x \
		-bench='FigThreadtest|FigLarson|ProducerConsumerContended|TCacheBatchLocks' .
	$(GO) run ./cmd/hoardbench -artifact BENCH_PR3.json

# metrics-smoke exercises the observability layer end to end: the
# instrumented churn run writes a timeline artifact (occupancy samples, lock
# counters, audit record, embedded Prometheus scrape), and the exposition
# format tests lint the scrape. Any audit failure fails the run.
metrics-smoke:
	$(GO) run ./cmd/hoardbench -metrics /tmp/hoardgo-metrics-timeline.json
	$(GO) test -run 'TestCollectMetricsTimeline' ./internal/experiments/
	$(GO) test -run 'TestWriteMetrics|TestLint' . ./internal/metrics/
