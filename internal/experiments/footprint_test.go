package experiments

import "testing"

func TestFootprintResults(t *testing.T) {
	entries := FootprintResults(Defaults(Quick), nil)
	if len(entries) != 2*len(FootprintModes()) {
		t.Fatalf("got %d entries, want %d", len(entries), 2*len(FootprintModes()))
	}
	byMode := map[string]map[string]FootprintEntry{}
	for _, e := range entries {
		if byMode[e.Workload] == nil {
			byMode[e.Workload] = map[string]FootprintEntry{}
		}
		byMode[e.Workload][e.Mode] = e

		if e.FinalReserved != e.FinalCommitted+e.FinalDecommitted {
			t.Errorf("%s/%s: reserved %d != committed %d + decommitted %d",
				e.Workload, e.Mode, e.FinalReserved, e.FinalCommitted, e.FinalDecommitted)
		}
		if e.Rounds == 0 || e.PeakCommitted == 0 || e.ElapsedNS == 0 {
			t.Errorf("%s/%s: degenerate entry %+v", e.Workload, e.Mode, e)
		}
		switch e.Mode {
		case "off":
			if e.ScavengePasses != 0 || e.FinalDecommitted != 0 {
				t.Errorf("%s/off scavenged: %+v", e.Workload, e)
			}
		default:
			if e.ScavengePasses == 0 || e.ScavengedBytes == 0 {
				t.Errorf("%s/%s never scavenged: %+v", e.Workload, e.Mode, e)
			}
		}
	}
	for wl, modes := range byMode {
		off, scav, forced := modes["off"], modes["scavenge"], modes["forced"]
		// The acceptance criterion: the scavenger's steady-state committed
		// footprint sits measurably below retain-everything, and forced
		// release is at least as aggressive as the paced policy.
		if scav.SteadyCommitted >= off.SteadyCommitted {
			t.Errorf("%s: scavenge steady %d not below off %d", wl, scav.SteadyCommitted, off.SteadyCommitted)
		}
		if forced.SteadyCommitted > scav.SteadyCommitted {
			t.Errorf("%s: forced steady %d above scavenge %d", wl, forced.SteadyCommitted, scav.SteadyCommitted)
		}
		// Peak demand is set by the workload, not the release policy.
		if off.PeakCommitted != scav.PeakCommitted {
			t.Errorf("%s: peak differs across modes: off %d scavenge %d", wl, off.PeakCommitted, scav.PeakCommitted)
		}
	}
}

func TestFootprintTableShape(t *testing.T) {
	tbl := Footprint(Defaults(Quick), nil)
	if tbl.ID != "footprint" {
		t.Fatalf("table ID %q", tbl.ID)
	}
	if len(tbl.Rows) != 2*len(FootprintModes()) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tbl.Header))
		}
	}
}

func TestSteadyMean(t *testing.T) {
	if got := steadyMean([]int64{100, 100, 100, 40}); got != 40 {
		t.Fatalf("steadyMean tail-of-4 = %d, want 40", got)
	}
	if got := steadyMean([]int64{8}); got != 8 {
		t.Fatalf("steadyMean single = %d", got)
	}
	if got := steadyMean(nil); got != 0 {
		t.Fatalf("steadyMean nil = %d", got)
	}
}
