package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/scavenge"
	"hoardgo/internal/vm"
	"hoardgo/internal/workload"
)

// This file is the A12 experiment: the real-memory arena backend
// (DESIGN.md §12). Unlike the simulator experiments it measures wall-clock
// time and real physical memory: (a) the free path's pointer→superblock
// resolution cost, address arithmetic versus the simulated space's
// two-level page table, at a span population large enough that the index
// does not hide in cache; (b) malloc/free throughput on real memory across
// a thread sweep, sim versus arena; (c) the RSS-over-time trajectory of a
// churn workload under the release policies, with /proc/self/statm as
// ground truth that madvise(MADV_DONTNEED) actually returns pages.
// cmd/hoardbench serializes all three into the committed BENCH_PR7.json.

// arenaSpanSize is the superblock size the experiment reserves through both
// backends.
const arenaSpanSize = 8192

// ResolveEntry is one backend's resolution measurement.
type ResolveEntry struct {
	Backend string `json:"backend"`
	// Spans is the live span population the index holds.
	Spans int `json:"spans"`
	// Lookups is how many random resolutions were timed.
	Lookups int64 `json:"lookups"`
	// NSPerLookup is wall nanoseconds per resolution.
	NSPerLookup float64 `json:"ns_per_lookup"`
}

// ResolveResult compares pointer→span resolution cost across backends.
type ResolveResult struct {
	Entries []ResolveEntry `json:"entries"`
	// Speedup is sim ns/lookup over arena ns/lookup — the acceptance
	// criterion requires >= 2 at a cache-hostile population.
	Speedup float64 `json:"speedup"`
}

// resolveSpans sizes the span population: large enough that the sim page
// table's entry arrays and Span headers fall out of L2, so its two
// dependent loads pay real latency against the arena's single slot load.
func resolveSpans(scale Scale) int {
	if scale == Full {
		return 1 << 17 // 1 GiB of 8 KiB spans
	}
	return 1 << 16
}

// measureResolveBackend reserves spans superblocks and times random interior
// resolutions through the Backend interface (the same indirection the free
// path pays).
func measureResolveBackend(be vm.Backend, spans int, lookups int64) ResolveEntry {
	sps := make([]*vm.Span, spans)
	bases := make([]uint64, spans)
	for i := range sps {
		sps[i] = be.Reserve(arenaSpanSize, arenaSpanSize, nil)
		bases[i] = sps[i].Base
	}
	// Precomputed random interior addresses: the timed loop streams through
	// this array (prefetchable) while the lookups themselves are random
	// (not). xorshift64 keeps generation deterministic and cheap.
	const addrBuf = 1 << 20
	addrs := make([]uint64, addrBuf)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range addrs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		addrs[i] = bases[state&uint64(spans-1)] + (state>>40)%arenaSpanSize
	}
	var hits int64
	start := time.Now()
	for i := int64(0); i < lookups; i++ {
		if be.Lookup(addrs[i&(addrBuf-1)]) != nil {
			hits++
		}
	}
	elapsed := time.Since(start)
	if hits != lookups {
		panic(fmt.Sprintf("arena experiment: %d of %d lookups missed on %s", lookups-hits, lookups, be.Name()))
	}
	for _, sp := range sps {
		be.Release(sp)
	}
	return ResolveEntry{
		Backend:     be.Name(),
		Spans:       spans,
		Lookups:     lookups,
		NSPerLookup: float64(elapsed.Nanoseconds()) / float64(lookups),
	}
}

// MeasureResolve times pointer→span resolution on both backends. It errors
// where the arena backend is unavailable.
func MeasureResolve(scale Scale) (ResolveResult, error) {
	spans := resolveSpans(scale)
	lookups := int64(1 << 23)
	if scale == Full {
		lookups = 1 << 24
	}
	arena, err := vm.NewArena(vm.ArenaOptions{
		SpanSize:         arenaSpanSize,
		SlotRegionBytes:  int64(spans)*arenaSpanSize + (64 << 20),
		LargeRegionBytes: 16 << 20,
	})
	if err != nil {
		return ResolveResult{}, fmt.Errorf("arena backend unavailable: %w", err)
	}
	defer arena.Close()

	var res ResolveResult
	sim := measureResolveBackend(vm.New(), spans, lookups)
	ar := measureResolveBackend(arena, spans, lookups)
	res.Entries = []ResolveEntry{sim, ar}
	if ar.NSPerLookup > 0 {
		res.Speedup = sim.NSPerLookup / ar.NSPerLookup
	}
	return res, nil
}

// ArenaThroughputEntry is one (backend x procs) cell of the wall-clock
// malloc/free sweep.
type ArenaThroughputEntry struct {
	Backend string `json:"backend"`
	Procs   int    `json:"procs"`
	Ops     int64  `json:"ops"`
	// ElapsedNS is wall time; OpsPerMS the throughput.
	ElapsedNS int64   `json:"elapsed_ns"`
	OpsPerMS  float64 `json:"ops_per_ms"`
}

// arenaProcs sweeps powers of two up to NumCPU, always including NumCPU.
func arenaProcs() []int {
	n := runtime.NumCPU()
	var out []int
	for p := 1; p < n; p *= 2 {
		out = append(out, p)
	}
	return append(out, n)
}

// MeasureArenaThroughput runs Larson (remote-heavy malloc/free on real
// goroutines, every object written) on both backends across the thread
// sweep. Wall-clock numbers are machine-dependent; the artifact records
// them per backend so the sim-vs-arena ratio is still meaningful.
func MeasureArenaThroughput(scale Scale) ([]ArenaThroughputEntry, error) {
	var out []ArenaThroughputEntry
	for _, backend := range []string{"sim", "arena"} {
		for _, procs := range arenaProcs() {
			var hh *core.Hoard
			mk := func(p int, lf env.LockFactory) alloc.Allocator {
				hh = core.New(core.Config{Heaps: 2 * p, Backend: backend}, lf)
				return hh
			}
			h := workload.NewRealMaker("hoard", procs, mk)
			cfg := workload.DefaultLarson(procs)
			if scale == Quick {
				cfg.Rounds, cfg.OpsPerRound, cfg.SlotsPerWindow = 3, 3000, 500
			}
			res := workload.Larson(h, cfg)
			if backend == "arena" && hh.Backend() != "arena" {
				return nil, fmt.Errorf("arena backend unavailable: %s", hh.BackendFallbackReason())
			}
			if err := hh.CheckIntegrity(); err != nil {
				return nil, fmt.Errorf("arena throughput: integrity on %s/P=%d: %w", backend, procs, err)
			}
			hh.Space().Close()
			e := ArenaThroughputEntry{
				Backend:   backend,
				Procs:     procs,
				Ops:       res.Ops,
				ElapsedNS: res.ElapsedNS,
			}
			if res.ElapsedNS > 0 {
				e.OpsPerMS = float64(res.Ops) / (float64(res.ElapsedNS) / 1e6)
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// ArenaRSSEntry is one release mode's RSS trajectory on the arena backend.
type ArenaRSSEntry struct {
	// Mode is "off" (retain), "scavenge" (paced), or "forced" (drain every
	// round); Backend is always "arena" — the point is real pages.
	Mode    string `json:"mode"`
	Backend string `json:"backend"`
	Rounds  int    `json:"rounds"`
	// BaselineRSS is the process RSS before the allocator existed;
	// PeakDelta and FinalDelta are the peak and end-of-run growth over it.
	BaselineRSS int64 `json:"baseline_rss"`
	PeakDelta   int64 `json:"peak_delta"`
	FinalDelta  int64 `json:"final_delta"`
	// Samples is the per-round RSS delta over baseline, measured after
	// each round's frees and release policy ran.
	Samples []int64 `json:"samples"`
	// ScavengePasses and ScavengedBytes count the release activity;
	// DecommittedBytes is the allocator's own accounting at the end, to
	// cross-check against the OS-observed drop.
	ScavengePasses   int64 `json:"scavenge_passes"`
	ScavengedBytes   int64 `json:"scavenged_bytes"`
	DecommittedBytes int64 `json:"decommitted_bytes"`
}

// arenaRSSShape sizes the churn: workers each allocate blocks of ~1 KiB,
// write every byte (faulting the pages), then free everything, parking
// thousands of empty superblocks on the global heap.
func arenaRSSShape(scale Scale) (workers, blocks, rounds int) {
	if scale == Full {
		return 4, 16384, 12
	}
	return 4, 4096, 6
}

// MeasureArenaRSS drives the churn workload on the arena under each release
// policy and records the real RSS trajectory. Requires the arena backend
// and /proc/self/statm.
func MeasureArenaRSS(scale Scale) ([]ArenaRSSEntry, error) {
	if _, err := scavenge.ReadRSS(); err != nil {
		return nil, fmt.Errorf("no RSS source: %w", err)
	}
	workers, blocks, rounds := arenaRSSShape(scale)
	var out []ArenaRSSEntry
	for _, mode := range FootprintModes() {
		e, err := runArenaRSS(mode, workers, blocks, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

const arenaBlockSize = 1024

// runArenaRSS is one mode's run. Each round every worker allocates its
// blocks, writes them, and frees them all; then the release policy runs and
// the process RSS is sampled.
func runArenaRSS(mode string, workers, blocks, rounds int) (ArenaRSSEntry, error) {
	runtime.GC()
	baseline, err := scavenge.ReadRSS()
	if err != nil {
		return ArenaRSSEntry{}, err
	}
	h := core.New(core.Config{Heaps: 2 * workers, Backend: "arena"}, env.RealLockFactory{})
	if h.Backend() != "arena" {
		return ArenaRSSEntry{}, fmt.Errorf("arena backend unavailable: %s", h.BackendFallbackReason())
	}
	defer h.Space().Close()

	// The paced arm: generous bandwidth but a real token bucket, so it
	// trails the forced arm within a run yet converges well below "off".
	pacer := scavenge.NewPacer(scavenge.Config{
		HighWaterBytes: 64 * arenaSpanSize,
		LowWaterBytes:  8 * arenaSpanSize,
		BytesPerSec:    512 << 20,
		BurstBytes:     16 << 20,
	})
	scavEnv := &env.RealEnv{ID: -1}

	ths := make([]*alloc.Thread, workers)
	envs := make([]*env.RealEnv, workers)
	for i := range ths {
		envs[i] = &env.RealEnv{ID: i}
		ths[i] = h.NewThread(envs[i])
	}

	entry := ArenaRSSEntry{Mode: mode, Backend: "arena", Rounds: rounds, BaselineRSS: baseline}
	ptrs := make([][]alloc.Ptr, workers)
	for i := range ptrs {
		ptrs[i] = make([]alloc.Ptr, blocks)
	}
	parallel := func(fn func(w int)) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
		wg.Wait()
	}
	for r := 0; r < rounds; r++ {
		parallel(func(w int) {
			th, myPtrs := ths[w], ptrs[w]
			for i := range myPtrs {
				p := h.Malloc(th, arenaBlockSize)
				buf := h.Bytes(p, arenaBlockSize)
				for j := range buf {
					buf[j] = byte(i)
				}
				myPtrs[i] = p
			}
		})
		// Peak: the whole working set is live and written.
		if rss, err := scavenge.ReadRSS(); err == nil {
			entry.PeakDelta = max(entry.PeakDelta, rss-baseline)
		}
		parallel(func(w int) {
			th, myPtrs := ths[w], ptrs[w]
			for i := range myPtrs {
				h.Free(th, myPtrs[i])
			}
		})
		switch mode {
		case "forced":
			h.ScavengeGlobal(scavEnv, math.MaxInt64, 0)
		case "scavenge":
			// Let this round's parked empties turn cold, then release
			// whatever the bucket grants.
			time.Sleep(15 * time.Millisecond)
			empty := h.GlobalEmptyBytes(scavEnv)
			if grant := pacer.Grant(empty, time.Now().UnixNano()); grant > 0 {
				pacer.Spend(h.ScavengeGlobal(scavEnv, grant, int64(10*time.Millisecond)))
			}
		}
		// Trough: everything freed and the release policy has run.
		rss, err := scavenge.ReadRSS()
		if err != nil {
			return ArenaRSSEntry{}, err
		}
		entry.Samples = append(entry.Samples, rss-baseline)
	}
	if len(entry.Samples) > 0 {
		entry.FinalDelta = entry.Samples[len(entry.Samples)-1]
	}
	st := h.Stats()
	entry.ScavengePasses = st.ScavengePasses
	entry.ScavengedBytes = st.ScavengedBytes
	entry.DecommittedBytes = h.Space().Stats().DecommittedBytes
	if err := h.CheckIntegrity(); err != nil {
		return ArenaRSSEntry{}, fmt.Errorf("arena rss: integrity under %s: %w", mode, err)
	}
	return entry, nil
}

// Arena renders A12 as a table: resolution cost, the throughput sweep, and
// the RSS trajectory. Where the arena backend is unavailable the table says
// so instead of failing, keeping the experiment catalog runnable everywhere.
func Arena(opts Options, progress func(string, int)) Table {
	t := Table{
		ID: "arena", Title: "A12",
		Paper:  "real-memory arena backend: resolution cost, wall-clock throughput, RSS under release policies",
		Header: []string{"section", "key", "metric", "value"},
	}
	if progress != nil {
		progress("hoard/arena(resolve)", 1)
	}
	res, err := MeasureResolve(opts.Scale)
	if err != nil {
		t.Rows = append(t.Rows, []string{"resolve", "-", "skipped", err.Error()})
		return t
	}
	for _, e := range res.Entries {
		t.Rows = append(t.Rows, []string{
			"resolve", e.Backend, "ns/lookup", fmt.Sprintf("%.2f (%d spans)", e.NSPerLookup, e.Spans),
		})
	}
	t.Rows = append(t.Rows, []string{"resolve", "sim/arena", "speedup", fmt.Sprintf("%.2fx", res.Speedup)})

	if progress != nil {
		progress("hoard/arena(throughput)", runtime.NumCPU())
	}
	tps, err := MeasureArenaThroughput(opts.Scale)
	if err != nil {
		t.Rows = append(t.Rows, []string{"throughput", "-", "skipped", err.Error()})
	}
	for _, e := range tps {
		t.Rows = append(t.Rows, []string{
			"throughput", fmt.Sprintf("%s/P=%d", e.Backend, e.Procs),
			"ops/ms", fmt.Sprintf("%.0f", e.OpsPerMS),
		})
	}

	if progress != nil {
		progress("hoard/arena(rss)", 4)
	}
	rss, err := MeasureArenaRSS(opts.Scale)
	if err != nil {
		t.Rows = append(t.Rows, []string{"rss", "-", "skipped", err.Error()})
	}
	for _, e := range rss {
		t.Rows = append(t.Rows, []string{
			"rss", e.Mode, "peak/final delta",
			fmt.Sprintf("%s / %s (%d scavenges)", fmtBytes(e.PeakDelta), fmtBytes(e.FinalDelta), e.ScavengePasses),
		})
	}
	return t
}
