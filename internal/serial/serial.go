// Package serial implements the paper's first baseline: a serial,
// single-heap allocator in the mold of Solaris malloc.
//
// One lock protects one heap; every thread's malloc and free serialize on
// it. The structure reuses the superblock machinery (segregated size
// classes, fullness groups) so that per-operation costs are comparable to
// Hoard's and the measured differences are due to the architecture, not the
// data structures. Because consecutive blocks of a superblock are handed to
// whichever threads happen to call malloc, this allocator actively induces
// false sharing; because there is a single lock, it does not scale.
package serial

import (
	"fmt"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/heap"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// Allocator is the serial single-heap allocator.
type Allocator struct {
	space   vm.Backend
	classes *sizeclass.Table
	sbSize  int
	h       *heap.Heap
	acct    alloc.Accounting

	batchRefills  atomic.Int64
	batchFlushes  atomic.Int64
	batchedBlocks atomic.Int64
}

type largeObj struct{ size int }

// New creates a serial allocator with superblock size sbSize (0 selects the
// default 8 KiB).
func New(sbSize int, lf env.LockFactory) *Allocator {
	if sbSize == 0 {
		sbSize = superblock.DefaultSize
	}
	classes := sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, sbSize/2)
	return &Allocator{
		space:   vm.New(),
		classes: classes,
		sbSize:  sbSize,
		// The serial heap never evicts, so the emptiness parameters
		// are inert; 0.5/0 are placeholders.
		h: heap.New(0, sbSize, 0.5, 0, classes.NumClasses(), lf.NewLock("serial.heap")),
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "serial" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator. The serial allocator keeps no
// per-thread state.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	return &alloc.Thread{ID: e.ThreadID(), Env: e}
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > a.classes.MaxSize() {
		lo := &largeObj{}
		sp := a.space.Reserve(size, vm.PageSize, lo)
		lo.size = sp.Len
		e.Charge(env.OpOSAlloc, 1)
		e.Charge(env.OpMallocSlow, 1)
		a.acct.OnLarge()
		a.acct.OnMalloc(sp.Len)
		return alloc.Ptr(sp.Base)
	}
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)
	a.h.Lock.Lock(e)
	p, ok := a.h.AllocBlock(e, class)
	if !ok {
		e.Charge(env.OpMallocSlow, 1)
		e.Charge(env.OpOSAlloc, 1)
		sb := superblock.New(a.space, a.sbSize, class, blockSize)
		a.h.Insert(sb)
		p, _ = a.h.AllocBlock(e, class)
	}
	a.h.Lock.Unlock(e)
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(blockSize)
	return p
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("serial: free of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *largeObj:
		if uint64(p) != sp.Base {
			panic(fmt.Sprintf("serial: free of interior large-object pointer %#x", uint64(p)))
		}
		a.acct.OnFree(owner.size)
		a.space.Release(sp)
		e.Charge(env.OpOSAlloc, 1)
		e.Charge(env.OpFree, 1)
	case *superblock.Superblock:
		a.h.Lock.Lock(e)
		a.h.FreeBlock(e, owner, p)
		a.h.Lock.Unlock(e)
		e.Charge(env.OpFree, 1)
		a.acct.OnFree(owner.BlockSize())
	default:
		panic(fmt.Sprintf("serial: free of foreign pointer %#x", uint64(p)))
	}
}

// MallocBatch implements alloc.BatchAllocator: up to n same-size blocks
// carved under ONE acquisition of the single heap lock. On a serial
// allocator this is where batching pays the most — every thread's every
// operation serializes on that lock, so a magazine refill that used to take
// it Capacity/2 times now takes it once.
func (a *Allocator) MallocBatch(t *alloc.Thread, size, n int, out []alloc.Ptr) int {
	if n > len(out) {
		n = len(out)
	}
	if n <= 0 {
		return 0
	}
	e := t.Env
	if size > a.classes.MaxSize() {
		for i := 0; i < n; i++ {
			out[i] = a.Malloc(t, size)
		}
		return n
	}
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)
	a.h.Lock.Lock(e)
	for got := 0; got < n; got++ {
		p, ok := a.h.AllocBlock(e, class)
		if !ok {
			e.Charge(env.OpMallocSlow, 1)
			e.Charge(env.OpOSAlloc, 1)
			sb := superblock.New(a.space, a.sbSize, class, blockSize)
			a.h.Insert(sb)
			p, _ = a.h.AllocBlock(e, class)
		}
		out[got] = p
	}
	a.h.Lock.Unlock(e)
	e.Charge(env.OpMallocBatch, 1)
	e.Charge(env.OpMallocFast, int64(n))
	a.acct.OnMallocN(n, int64(n)*int64(blockSize))
	a.batchRefills.Add(1)
	a.batchedBlocks.Add(int64(n))
	return n
}

// FreeBatch implements alloc.BatchAllocator: one page-table pass groups the
// pointers by superblock (large objects are released inline), then every
// group is freed under ONE acquisition of the heap lock via heap.FreeBlocks.
func (a *Allocator) FreeBatch(t *alloc.Thread, ps []alloc.Ptr) {
	e := t.Env
	type group struct {
		sb *superblock.Superblock
		ps []alloc.Ptr
	}
	var groups []group
	for _, p := range ps {
		if p.IsNil() {
			continue
		}
		sp := a.space.Lookup(uint64(p))
		if sp == nil {
			panic(fmt.Sprintf("serial: free of unknown pointer %#x", uint64(p)))
		}
		switch owner := sp.Owner.(type) {
		case *largeObj:
			if uint64(p) != sp.Base {
				panic(fmt.Sprintf("serial: free of interior large-object pointer %#x", uint64(p)))
			}
			a.acct.OnFree(owner.size)
			a.space.Release(sp)
			e.Charge(env.OpOSAlloc, 1)
			e.Charge(env.OpFree, 1)
		case *superblock.Superblock:
			found := false
			for i := range groups {
				if groups[i].sb == owner {
					groups[i].ps = append(groups[i].ps, p)
					found = true
					break
				}
			}
			if !found {
				groups = append(groups, group{sb: owner, ps: []alloc.Ptr{p}})
			}
		default:
			panic(fmt.Sprintf("serial: free of foreign pointer %#x", uint64(p)))
		}
	}
	e.Charge(env.OpFreeBatch, 1)
	a.batchFlushes.Add(1)
	if len(groups) == 0 {
		return
	}
	var nblk int
	var bytes int64
	a.h.Lock.Lock(e)
	for _, g := range groups {
		a.h.FreeBlocks(e, g.sb, g.ps)
		e.Charge(env.OpFree, int64(len(g.ps)))
		nblk += len(g.ps)
		bytes += int64(len(g.ps)) * int64(g.sb.BlockSize())
	}
	a.h.Lock.Unlock(e)
	a.acct.OnFreeN(nblk, bytes)
	a.batchedBlocks.Add(int64(nblk))
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("serial: UsableSize of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *largeObj:
		return owner.size
	case *superblock.Superblock:
		return owner.BlockSize()
	}
	panic(fmt.Sprintf("serial: UsableSize of foreign pointer %#x", uint64(p)))
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("serial: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	st.BatchRefills = a.batchRefills.Load()
	st.BatchFlushes = a.batchFlushes.Load()
	st.BatchedBlocks = a.batchedBlocks.Load()
	return st
}

// CheckIntegrity implements alloc.Allocator.
func (a *Allocator) CheckIntegrity() error {
	return a.h.CheckIntegrity()
}
