package loadgen

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHistIndexValueRoundTrip(t *testing.T) {
	// The bucket's representative value must bound the value from above
	// with bounded relative error (one sub-bucket, 1/16).
	vals := []int64{0, 1, 15, 16, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1 << 20, (1 << 40) + 12345, 1<<62 + 999}
	for _, v := range vals {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		hv := histValue(idx)
		if hv < v {
			t.Fatalf("histValue(histIndex(%d)) = %d < value", v, hv)
		}
		if v >= 32 && float64(hv-v) > float64(v)/8 {
			t.Fatalf("bucket error for %d: representative %d off by %d", v, hv, hv-v)
		}
	}
	// Random sweep of the same invariant.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63()
		idx := histIndex(v)
		if hv := histValue(idx); hv < v || (v >= 32 && float64(hv-v) > float64(v)/8) {
			t.Fatalf("round trip failed for %d: idx=%d value=%d", v, idx, hv)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	const n = 100000
	for i := int64(1); i <= n; i++ {
		h.Record(i)
	}
	s := h.Summary()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	if s.Max != n {
		t.Fatalf("Max = %d, want %d", s.Max, n)
	}
	within := func(name string, got, want int64) {
		t.Helper()
		lo, hi := want-want/10, want+want/10
		if got < lo || got > hi {
			t.Fatalf("%s = %d, want within 10%% of %d", name, got, want)
		}
	}
	within("P50", s.P50, n/2)
	within("P90", s.P90, n*9/10)
	within("P99", s.P99, n*99/100)
	within("P999", s.P999, n*999/1000)
	if s.Mean < float64(n)/2*0.99 || s.Mean > float64(n)/2*1.01+1 {
		t.Fatalf("Mean = %.1f, want ~%d", s.Mean, n/2)
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	if s := h.Summary(); s.Count != 0 || s.Max != 0 || s.P999 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	h.Record(-5)
	if s := h.Summary(); s.Count != 1 || s.P50 != 0 {
		t.Fatalf("negative record summary = %+v", s)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Summary(); s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
}
