// Package alloc defines the types shared by every allocator in this
// reproduction: the simulated pointer type, per-thread handles, the common
// Allocator interface, and usage accounting.
//
// Six allocators implement Allocator, mirroring the paper's full taxonomy
// (§2 of DESIGN.md), plus one layered extension:
//
//   - internal/core:       Hoard (the paper's contribution)
//   - internal/serial:     single-lock serial heap ("Solaris malloc"-like)
//   - internal/concurrent: single heap, per-size-class locks (Iyengar-like)
//   - internal/private:    pure private heaps (Cilk/STL-like)
//   - internal/ownership:  private heaps with ownership (Ptmalloc/MTmalloc-like)
//   - internal/threshold:  private heaps with thresholds (DYNIX-like)
//   - internal/tcache:     per-thread magazines over any of the above
//     (the tcmalloc direction; an extension experiment)
package alloc

import (
	"sync/atomic"

	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// Ptr is an address in the simulated address space. The zero value is the
// allocator's nil.
type Ptr uint64

// IsNil reports whether p is the null pointer.
func (p Ptr) IsNil() bool { return p == 0 }

// Thread is a per-thread allocation handle. Go has no thread-local storage
// visible to libraries, so callers register each worker with the allocator
// (NewThread) and pass the returned Thread to every operation, the way
// arena-style C allocators take an explicit arena argument. A Thread must
// not be used concurrently from multiple goroutines.
type Thread struct {
	// ID is the thread's stable identifier (from its environment).
	ID int
	// Env is the thread's execution environment.
	Env env.Env
	// State is owned by the allocator that created this Thread and holds
	// its per-thread structures (heap index, private heap, arena, ...).
	State any
}

// Allocator is the interface all five allocators implement.
type Allocator interface {
	// Name returns a short identifier ("hoard", "serial", ...) used in
	// benchmark output.
	Name() string

	// NewThread registers a worker and returns its allocation handle.
	// Safe for concurrent use.
	NewThread(e env.Env) *Thread

	// Malloc returns a block of at least size bytes, or the nil Ptr only
	// if size exceeds the allocator's maximum (none of the allocators
	// here impose one below the address-space size). Malloc(0) returns a
	// valid minimal block, like C malloc may.
	Malloc(t *Thread, size int) Ptr

	// Free releases a block previously returned by Malloc on the same
	// allocator. Freeing from a different thread than the allocating one
	// is allowed (that is the whole point of the paper). Freeing nil is
	// a no-op; double frees and foreign pointers panic.
	Free(t *Thread, p Ptr)

	// UsableSize returns the usable byte count of a live block.
	UsableSize(p Ptr) int

	// Bytes returns a writable view of n bytes of the block at p. It
	// panics if n exceeds the block's usable size.
	Bytes(p Ptr, n int) []byte

	// Stats returns a snapshot of the allocator's counters.
	Stats() Stats

	// Space exposes the simulated OS address space backing this
	// allocator, for committed-memory measurements.
	Space() vm.Backend

	// CheckIntegrity exhaustively validates internal invariants (free
	// list integrity, usage accounting, the emptiness invariant for
	// Hoard). It requires the allocator to be quiescent and is meant for
	// tests; it returns a descriptive error on the first violation.
	CheckIntegrity() error
}

// BatchAllocator is optionally implemented by allocators that can transfer
// several blocks of one size class per lock acquisition. The package-level
// MallocBatch and FreeBatch helpers dispatch to the native implementation
// when present and fall back to per-block Malloc/Free otherwise, so callers
// (the tcache magazine layer, batch-aware applications) work against any
// Allocator.
type BatchAllocator interface {
	// MallocBatch allocates up to n blocks of at least size bytes each
	// into out[:n] and returns the number obtained (all the allocators
	// here always obtain n; the count exists for future allocators with a
	// real exhaustion mode). n must not exceed len(out). Implementations
	// acquire their heap lock once per batch, not once per block.
	MallocBatch(t *Thread, size, n int, out []Ptr) int

	// FreeBatch releases every block in ps. Nil pointers are skipped.
	// Implementations group the pointers by owner and take each owner's
	// lock once per group, not once per block.
	FreeBatch(t *Thread, ps []Ptr)
}

// ThreadFlusher is optionally implemented by layered allocators that strand
// per-thread state (tcache magazines, the debug quarantine). FlushThread
// returns every block the layer holds on t's behalf to the inner allocator
// and deregisters the thread — the thread-exit hook of a C allocator. The
// handle must remain usable afterwards (late stray operations bypass the
// caches); a flushed thread simply stops stranding memory. The package-level
// FlushThread helper dispatches to the implementation when present.
type ThreadFlusher interface {
	FlushThread(t *Thread)
}

// FlushThread flushes t's layer-held state when a implements ThreadFlusher
// and is a no-op otherwise, so callers can retire threads against any
// allocator stack.
func FlushThread(a Allocator, t *Thread) {
	if f, ok := a.(ThreadFlusher); ok {
		f.FlushThread(t)
	}
}

// MallocBatch allocates up to n blocks of at least size bytes each into
// out[:n], using a's native batch path when it implements BatchAllocator and
// per-block Mallocs otherwise. It returns the number of blocks obtained.
func MallocBatch(a Allocator, t *Thread, size, n int, out []Ptr) int {
	if b, ok := a.(BatchAllocator); ok {
		return b.MallocBatch(t, size, n, out)
	}
	for i := 0; i < n; i++ {
		out[i] = a.Malloc(t, size)
	}
	return n
}

// FreeBatch releases every block in ps, using a's native batch path when it
// implements BatchAllocator and per-block Frees otherwise.
func FreeBatch(a Allocator, t *Thread, ps []Ptr) {
	if b, ok := a.(BatchAllocator); ok {
		b.FreeBatch(t, ps)
		return
	}
	for _, p := range ps {
		a.Free(t, p)
	}
}

// NoBatch hides an allocator's native batch implementation: the embedded
// interface promotes only the Allocator methods, so a type assertion to
// BatchAllocator fails and the package-level batch helpers fall back to the
// per-block path. Experiments and tests use it to ablate exactly where
// batching's win comes from.
type NoBatch struct{ Allocator }

// Stats is a snapshot of allocator activity. Fields that do not apply to a
// given allocator are zero.
type Stats struct {
	// Mallocs and Frees count completed operations.
	Mallocs, Frees int64
	// LiveBytes is the usable (class-rounded) bytes currently allocated.
	LiveBytes int64
	// PeakLiveBytes is the high-water mark of LiveBytes.
	PeakLiveBytes int64
	// LargeMallocs counts allocations that took the large-object path.
	LargeMallocs int64
	// SuperblockMoves counts superblock transfers between per-processor
	// heaps and the global heap (Hoard only).
	SuperblockMoves int64
	// GlobalHeapHits counts mallocs satisfied by reusing a superblock
	// from the global heap (Hoard only).
	GlobalHeapHits int64
	// OSReserves counts superblock/span requests that reached the
	// simulated OS.
	OSReserves int64
	// RemoteFrees counts frees performed by a thread other than the one
	// whose heap/arena owns the block (where the concept applies).
	RemoteFrees int64
	// RemoteFastFrees counts the subset of RemoteFrees that took the
	// lock-free remote-stack push instead of acquiring a heap lock
	// (Hoard only).
	RemoteFastFrees int64
	// RemoteDrains counts batch reconciliations of remote-free stacks
	// that recovered at least one block (Hoard only).
	RemoteDrains int64
	// MovedLiveBlocks sums the still-allocated blocks carried by
	// superblocks at the moment they were evicted to the global heap
	// (Hoard only) — each becomes a future remote free.
	MovedLiveBlocks int64
	// BatchRefills counts native MallocBatch calls (one magazine refill,
	// when driven by the tcache layer) served under a single heap-lock
	// acquisition.
	BatchRefills int64
	// BatchFlushes counts native FreeBatch calls (one magazine flush, when
	// driven by the tcache layer); each takes one lock per owner group
	// rather than one per block.
	BatchFlushes int64
	// BatchedBlocks counts blocks transferred through the native batch
	// paths, in both directions. Zero when only the per-block fallback ran.
	BatchedBlocks int64
	// ScavengePasses counts scavenge passes that released at least one
	// superblock's pages back to the OS (Hoard only).
	ScavengePasses int64
	// ScavengedBytes is the cumulative byte total decommitted by the
	// scavenger, including forced ReleaseMemory passes (Hoard only).
	ScavengedBytes int64
	// LockFreeMallocs counts mallocs served by the lock-free warm path —
	// a CAS pop from an owned superblock's free list with no heap lock
	// (Hoard only).
	LockFreeMallocs int64
	// LockFreeFrees counts owner-local frees that took the lock-free CAS
	// push instead of the heap lock (Hoard only; remote lock-free frees
	// are counted in RemoteFastFrees).
	LockFreeFrees int64
	// FastPathRetries counts CAS retries across all lock-free warm-path
	// operations — the contention the fast paths absorb without blocking.
	FastPathRetries int64
	// BackendFallbacks counts vm-backend selections that degraded to the
	// simulated space because the requested arena backend was unavailable
	// (0 or 1 per allocator; the reason is on the allocator itself).
	BackendFallbacks int64
	// LocalReuses counts malloc slow paths served by reformatting one of
	// the heap's own empty superblocks to the needed class instead of
	// taking one from the global heap (Hoard only). Each such reuse keeps
	// a(i) unchanged, so it triggers no eviction — the local antidote to
	// the take-then-evict ping-pong through the global heap.
	LocalReuses int64
}

// MergeAllocatorCounters overwrites every allocator-internal counter in dst
// with inner's values while preserving dst's application-view gauges —
// Mallocs, Frees, LiveBytes, and PeakLiveBytes. Layering allocators (tcache,
// debugalloc) report their own application-level activity but must pass the
// wrapped allocator's machinery counters through; because this helper copies
// the whole struct and restores the application fields, counters added to
// Stats later propagate without touching the wrappers.
func MergeAllocatorCounters(dst *Stats, inner Stats) {
	app := *dst
	*dst = inner
	dst.Mallocs, dst.Frees = app.Mallocs, app.Frees
	dst.LiveBytes, dst.PeakLiveBytes = app.LiveBytes, app.PeakLiveBytes
}

// Accounting provides atomic live-byte gauges with a high-water mark,
// shared by all allocator implementations.
type Accounting struct {
	mallocs atomic.Int64
	frees   atomic.Int64
	live    atomic.Int64
	peak    atomic.Int64
	large   atomic.Int64
}

// OnMalloc records an allocation of usable size n.
func (a *Accounting) OnMalloc(n int) {
	a.mallocs.Add(1)
	v := a.live.Add(int64(n))
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// OnMallocN records n allocations totalling bytes usable bytes in one
// update: one counter add and one high-water check for the whole batch.
func (a *Accounting) OnMallocN(n int, bytes int64) {
	a.mallocs.Add(int64(n))
	v := a.live.Add(bytes)
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// OnFree records a deallocation of usable size n.
func (a *Accounting) OnFree(n int) {
	a.frees.Add(1)
	a.live.Add(int64(-n))
}

// OnFreeN records n deallocations totalling bytes usable bytes in one
// update.
func (a *Accounting) OnFreeN(n int, bytes int64) {
	a.frees.Add(int64(n))
	a.live.Add(-bytes)
}

// OnLarge records that an allocation took the large-object path.
func (a *Accounting) OnLarge() { a.large.Add(1) }

// Fill populates the common fields of st.
func (a *Accounting) Fill(st *Stats) {
	st.Mallocs = a.mallocs.Load()
	st.Frees = a.frees.Load()
	st.LiveBytes = a.live.Load()
	st.PeakLiveBytes = a.peak.Load()
	st.LargeMallocs = a.large.Load()
}

// Live returns the current live usable bytes.
func (a *Accounting) Live() int64 { return a.live.Load() }

// ResetPeak lowers the live-bytes high-water mark to the current value.
func (a *Accounting) ResetPeak() { a.peak.Store(a.live.Load()) }

// ShardedAccounting is Accounting with its hot counters split across
// cache-line-padded shards so threads on different heaps stop bouncing the
// same cache lines on every malloc and free. Callers pick a shard per
// operation (Hoard uses the heap index); Fill and Live aggregate.
//
// PeakLiveBytes becomes an upper bound: each shard tracks its own
// high-water mark and Fill sums them, and per-shard peaks need not occur
// simultaneously. LiveBytes, Mallocs, and Frees remain exact at quiescence.
type ShardedAccounting struct {
	shards []acctShard
}

type acctShard struct {
	mallocs atomic.Int64
	frees   atomic.Int64
	live    atomic.Int64
	peak    atomic.Int64
	large   atomic.Int64
	_       [88]byte // pad to 128 bytes: separate cache-line pair per shard
}

// NewSharded creates accounting with n shards (at least 1).
func NewSharded(n int) *ShardedAccounting {
	if n < 1 {
		n = 1
	}
	return &ShardedAccounting{shards: make([]acctShard, n)}
}

func (a *ShardedAccounting) shard(i int) *acctShard {
	if i < 0 {
		i = -i
	}
	return &a.shards[i%len(a.shards)]
}

// OnMalloc records an allocation of usable size n against one shard.
func (a *ShardedAccounting) OnMalloc(shard, n int) {
	s := a.shard(shard)
	s.mallocs.Add(1)
	v := s.live.Add(int64(n))
	for {
		p := s.peak.Load()
		if v <= p || s.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// OnMallocN records n allocations totalling bytes usable bytes against one
// shard in a single update — the batch paths' amortized accounting.
func (a *ShardedAccounting) OnMallocN(shard, n int, bytes int64) {
	s := a.shard(shard)
	s.mallocs.Add(int64(n))
	v := s.live.Add(bytes)
	for {
		p := s.peak.Load()
		if v <= p || s.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// OnFree records a deallocation of usable size n against one shard. The
// shard need not match the one that recorded the malloc; per-shard live
// gauges can go negative, only the sum is meaningful.
func (a *ShardedAccounting) OnFree(shard, n int) {
	s := a.shard(shard)
	s.frees.Add(1)
	s.live.Add(int64(-n))
}

// OnFreeN records n deallocations totalling bytes usable bytes against one
// shard in a single update.
func (a *ShardedAccounting) OnFreeN(shard, n int, bytes int64) {
	s := a.shard(shard)
	s.frees.Add(int64(n))
	s.live.Add(-bytes)
}

// OnLarge records that an allocation took the large-object path.
func (a *ShardedAccounting) OnLarge(shard int) { a.shard(shard).large.Add(1) }

// Fill populates the common fields of st by summing all shards.
func (a *ShardedAccounting) Fill(st *Stats) {
	for i := range a.shards {
		s := &a.shards[i]
		st.Mallocs += s.mallocs.Load()
		st.Frees += s.frees.Load()
		st.LiveBytes += s.live.Load()
		st.PeakLiveBytes += s.peak.Load()
		st.LargeMallocs += s.large.Load()
	}
}

// Live returns the current live usable bytes summed across shards.
func (a *ShardedAccounting) Live() int64 {
	var v int64
	for i := range a.shards {
		v += a.shards[i].live.Load()
	}
	return v
}
