package concurrent

import (
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator { return New(0, lf) })
}

// TestDistinctClassesDistinctLocks pins the design: allocations in
// different size classes touch different locks, so they can proceed in
// parallel. We verify the structural property (distinct heaps per class).
func TestDistinctClassesDistinctLocks(t *testing.T) {
	a := New(0, lf)
	c8, _ := a.classes.ClassFor(8)
	c1024, _ := a.classes.ClassFor(1024)
	if c8 == c1024 {
		t.Fatal("test sizes share a class")
	}
	if a.classHeaps[c8] == a.classHeaps[c1024] {
		t.Fatal("classes share a heap")
	}
	if a.classHeaps[c8].Lock == a.classHeaps[c1024].Lock {
		t.Fatal("classes share a lock")
	}
}

// TestNoBlowup: a single shared heap reuses every freed block regardless of
// which thread freed it, so producer-consumer memory is flat — the one
// strength of this design.
func TestNoBlowup(t *testing.T) {
	a := New(0, lf)
	producer := a.NewThread(&env.RealEnv{ID: 0})
	consumer := a.NewThread(&env.RealEnv{ID: 1})
	var after10 int64
	for r := 0; r < 60; r++ {
		ps := make([]alloc.Ptr, 200)
		for i := range ps {
			ps[i] = a.Malloc(producer, 64)
		}
		for _, p := range ps {
			a.Free(consumer, p)
		}
		if r == 9 {
			after10 = a.Space().Committed()
		}
	}
	if got := a.Space().Committed(); got != after10 {
		t.Fatalf("committed grew %d -> %d; single heap must not blow up", after10, got)
	}
}

// TestActiveFalseSharingStructural: consecutive same-class allocations from
// different threads are adjacent (line-sharing) — the weakness this design
// shares with the serial allocator.
func TestActiveFalseSharingStructural(t *testing.T) {
	a := New(0, lf)
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	t1 := a.NewThread(&env.RealEnv{ID: 1})
	p0 := a.Malloc(t0, 8)
	p1 := a.Malloc(t1, 8)
	d := int64(p1) - int64(p0)
	if d < 0 {
		d = -d
	}
	if d >= 64 {
		t.Fatalf("blocks %d bytes apart; expected same cache line", d)
	}
}

func TestConcurrentMixedClasses(t *testing.T) {
	a := New(0, lf)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread(&env.RealEnv{ID: w})
			var ps []alloc.Ptr
			for i := 0; i < 3000; i++ {
				ps = append(ps, a.Malloc(th, 8<<uint(w%5)))
			}
			for _, p := range ps {
				a.Free(th, p)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d", got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
