package superblock

import (
	"math/rand"
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm/vmtest"
)

// freeBitPop counts the set bits of the free bitmap. The bitmap marks every
// block not currently allocated — carved blocks on the free list and
// never-carved blocks alike — so a consistent superblock always satisfies
// freeBitPop == nBlocks - used.
func freeBitPop(sb *Superblock) int {
	n := 0
	for i := 0; i < sb.nBlocks; i++ {
		if sb.isFree(i) {
			n++
		}
	}
	return n
}

// TestPropertyFullnessWordConsistency drives one superblock through random
// interleavings of every mutation the allocator performs — locked
// alloc/free, lock-free pops (single and run), lock-free frees (single and
// run), remote frees and drains — checking after every step that the packed
// fullness word's used count agrees with the model's live set plus the
// remote-pending population, and that the free bitmap complements it
// exactly. Sequential, so the checks can be exact at every step; the
// concurrent variant below checks the same algebra at quiescence.
func TestPropertyFullnessWordConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		space := vmtest.NewSized(t, DefaultSize)
		sb := New(space, DefaultSize, 2, 256) // 32 blocks: dense churn
		sb.Unseal()
		ref := sb.SelfRef()
		var live []alloc.Ptr
		takeLive := func() alloc.Ptr {
			i := rng.Intn(len(live))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			return p
		}
		for op := 0; op < 3000; op++ {
			switch rng.Intn(8) {
			case 0, 1:
				if p, ok := sb.AllocBlock(e); ok {
					live = append(live, p)
				}
			case 2:
				if p, ok, _ := ref.TryPop(e); ok {
					live = append(live, p)
				}
			case 3:
				out := make([]alloc.Ptr, rng.Intn(6)+1)
				n, _ := ref.TryPopRun(e, out)
				live = append(live, out[:n]...)
			case 4:
				if len(live) > 0 {
					sb.FreeBlock(e, takeLive())
				}
			case 5:
				if len(live) > 0 {
					if ok, _, _ := sb.FastFree(e, takeLive()); !ok {
						t.Fatal("FastFree refused on an unsealed superblock")
					}
				}
			case 6:
				k := rng.Intn(4) + 1
				if k > len(live) {
					k = len(live)
				}
				if k > 0 {
					ps := make([]alloc.Ptr, 0, k)
					for i := 0; i < k; i++ {
						ps = append(ps, takeLive())
					}
					if ok, _, _ := sb.FastFreeRun(e, ps); !ok {
						t.Fatal("FastFreeRun refused on an unsealed superblock")
					}
				}
			case 7:
				if len(live) > 0 {
					sb.RemoteFree(e, takeLive())
				}
				if rng.Intn(4) == 0 {
					sb.DrainRemote(e)
				}
			}
			_, used, _, sealed := unpackWord(sb.state.Load())
			if sealed {
				t.Fatal("superblock became sealed mid-run")
			}
			want := len(live) + sb.RemotePending()
			if used != want {
				t.Fatalf("op %d: used = %d, want %d live + %d remote-pending",
					op, used, len(live), sb.RemotePending())
			}
			if pop := freeBitPop(sb); pop != sb.nBlocks-used {
				t.Fatalf("op %d: free bitmap population %d, want nBlocks-used = %d",
					op, pop, sb.nBlocks-used)
			}
		}
		sb.DrainRemote(e)
		for _, p := range live {
			sb.FreeBlock(e, p)
		}
		if !sb.Empty() {
			t.Fatalf("iter %d: %d blocks in use after freeing everything", iter, sb.InUse())
		}
		if err := sb.CheckIntegrity(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// TestLockFreeConcurrentWordConsistency hammers one superblock's lock-free
// paths from several goroutines — pops, owner-style fast frees, run frees,
// and remote frees with a single drainer, mirroring the one-owner drain
// discipline — then checks at quiescence that the word, the free list, and
// the bitmap agree. Run under -race this doubles as the memory-model check
// for the CAS protocol.
func TestLockFreeConcurrentWordConsistency(t *testing.T) {
	space := vmtest.NewSized(t, DefaultSize)
	sb := New(space, DefaultSize, 2, 64)
	sb.Unseal()
	ref := sb.SelfRef()
	// Pre-carve the whole superblock so the free list (which lock-free
	// pops serve from) covers every block.
	ps := make([]alloc.Ptr, 0, sb.NBlocks())
	for {
		p, ok := sb.AllocBlock(e)
		if !ok {
			break
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		sb.FreeBlock(e, p)
	}

	const goroutines = 4
	const opsEach = 30000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			myEnv := &env.RealEnv{ID: id}
			var mine []alloc.Ptr
			scratch := make([]alloc.Ptr, 4)
			for i := 0; i < opsEach; i++ {
				switch rng.Intn(6) {
				case 0, 1:
					if p, ok, _ := ref.TryPop(myEnv); ok {
						mine = append(mine, p)
					}
				case 2:
					n, _ := ref.TryPopRun(myEnv, scratch)
					mine = append(mine, scratch[:n]...)
				case 3:
					if len(mine) > 0 {
						p := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						if ok, _, _ := sb.FastFree(myEnv, p); !ok {
							t.Errorf("FastFree refused while unsealed")
							return
						}
					}
				case 4:
					if len(mine) > 0 {
						p := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						sb.RemoteFree(myEnv, p)
					}
				case 5:
					// Goroutine 0 plays the owner: drain the remote stack.
					if id == 0 {
						sb.DrainRemote(myEnv)
					}
				}
			}
			for _, p := range mine {
				if ok, _, _ := sb.FastFree(myEnv, p); !ok {
					t.Errorf("FastFree refused during teardown")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	sb.DrainRemote(e)
	if !sb.Empty() {
		t.Fatalf("%d blocks in use after all goroutines freed everything", sb.InUse())
	}
	if pop := freeBitPop(sb); pop != sb.nBlocks {
		t.Fatalf("free bitmap population %d after quiescence, want %d", pop, sb.nBlocks)
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathsRespectSeal pins the fencing contract: a sealed superblock
// rejects every lock-free operation (pop, run pop, fast free, run free)
// while the locked paths still work — exactly what eviction and decommit
// rely on.
func TestFastPathsRespectSeal(t *testing.T) {
	space := vmtest.NewSized(t, DefaultSize)
	sb := New(space, DefaultSize, 2, 128)
	sb.Unseal()
	ref := sb.SelfRef()
	a, _ := sb.AllocBlock(e)
	b, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, b) // one block on the free list

	sb.Seal()
	if _, ok, _ := ref.TryPop(e); ok {
		t.Fatal("TryPop succeeded on a sealed superblock")
	}
	if n, _ := ref.TryPopRun(e, make([]alloc.Ptr, 2)); n != 0 {
		t.Fatal("TryPopRun claimed blocks from a sealed superblock")
	}
	if ok, _, _ := sb.FastFree(e, a); ok {
		t.Fatal("FastFree succeeded on a sealed superblock")
	}
	if ok, _, _ := sb.FastFreeRun(e, []alloc.Ptr{a}); ok {
		t.Fatal("FastFreeRun succeeded on a sealed superblock")
	}
	// Locked paths ignore the seal.
	if _, ok := sb.AllocBlock(e); !ok {
		t.Fatal("locked AllocBlock failed on a sealed superblock")
	}
	sb.FreeBlock(e, a)
	sb.Unseal()
	if _, ok, _ := ref.TryPop(e); !ok {
		t.Fatal("TryPop failed after unsealing")
	}
}
