package core

import (
	"math/rand"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

func benchBackend(b *testing.B, name string) *Hoard {
	b.Helper()
	h := New(Config{Backend: name}, env.RealLockFactory{})
	if h.Backend() != name {
		b.Skipf("backend %q unavailable: %v", name, h.BackendFallbackReason())
	}
	b.Cleanup(func() { h.Space().Close() })
	return h
}

// BenchmarkResolveFree pins the free path's pointer→superblock resolution
// cost on both backends. "resolve" is the raw Lookup (the arena's address
// arithmetic vs the simulated space's two-level page table); "mallocfree"
// is the full operation pair, which since the PR-7 dedup performs exactly
// one resolution per free (it used to do two — one for the span, one for
// the largeObj check).
func BenchmarkResolveFree(b *testing.B) {
	for _, backend := range []string{"sim", "arena"} {
		b.Run(backend, func(b *testing.B) {
			h := benchBackend(b, backend)
			th := h.NewThread(&env.RealEnv{ID: 0})
			// A working set large enough (64 Ki blocks over ~512
			// superblocks) that resolution is not served from a warm L1
			// line, shuffled so consecutive frees hit different
			// superblocks — the pattern of a real producer/consumer free
			// stream.
			const live = 1 << 16
			ps := make([]alloc.Ptr, live)
			for i := range ps {
				ps[i] = h.Malloc(th, 64)
			}
			rng := rand.New(rand.NewSource(42))
			rng.Shuffle(live, func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
			b.Run("resolve", func(b *testing.B) {
				var sink *vm.Span
				for i := 0; i < b.N; i++ {
					sink = h.resolve("bench", ps[i&(live-1)])
				}
				if sink == nil {
					b.Fatal("resolve returned nil")
				}
			})
			b.Run("mallocfree", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := h.Malloc(th, 64)
					h.Free(th, p)
				}
			})
			for _, p := range ps {
				h.Free(th, p)
			}
		})
	}
}
